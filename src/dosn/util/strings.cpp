#include "dosn/util/strings.hpp"

#include <cctype>

namespace dosn::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string toLower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace dosn::util
