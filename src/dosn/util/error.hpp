// Library-wide exception hierarchy. Exceptions signal contract violations and
// unrecoverable states; expected failures (bad signature, failed decryption)
// are std::optional/bool returns instead.
#pragma once

#include <stdexcept>
#include <string>

namespace dosn::util {

/// Root of all dosn exceptions.
class DosnError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed serialized data (truncated, out-of-range, bad tag).
class CodecError : public DosnError {
 public:
  using DosnError::DosnError;
};

/// Misuse of a cryptographic API (wrong key size, nonce reuse guard, ...).
class CryptoError : public DosnError {
 public:
  using DosnError::DosnError;
};

/// Simulator/overlay misuse (unknown node, send while offline, ...).
class NetError : public DosnError {
 public:
  using DosnError::DosnError;
};

}  // namespace dosn::util
