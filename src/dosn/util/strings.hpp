// Small string helpers used by the policy parser, search tokenizer and CLIs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dosn::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string trim(std::string_view text);

/// ASCII lower-casing.
std::string toLower(std::string_view text);

/// Splits into lowercase word tokens (alphanumeric runs) — the search
/// tokenizer.
std::vector<std::string> tokenize(std::string_view text);

}  // namespace dosn::util
