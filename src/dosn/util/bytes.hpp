// Byte-buffer helpers shared by every module: hex/base64 transcoding,
// constant-time comparison, concatenation and conversions to/from text.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dosn::util {

/// The library-wide owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over bytes; every hashing/encryption API takes this.
using BytesView = std::span<const std::uint8_t>;

/// Copies a string's characters into a byte buffer (no encoding change).
Bytes toBytes(std::string_view text);

/// Interprets a byte buffer as text (no validation; callers own semantics).
std::string toString(BytesView data);

/// Lower-case hex encoding ("deadbeef").
std::string toHex(BytesView data);

/// Parses hex produced by toHex (case-insensitive). Returns std::nullopt on
/// odd length or non-hex characters.
std::optional<Bytes> fromHex(std::string_view hex);

/// Standard base64 (RFC 4648, with padding).
std::string toBase64(BytesView data);

/// Parses base64 with or without padding; std::nullopt on invalid input.
std::optional<Bytes> fromBase64(std::string_view b64);

/// Comparison that does not short-circuit on the first mismatching byte.
/// Still compares lengths up front (length is considered public).
bool constantTimeEqual(BytesView a, BytesView b);

/// a || b.
Bytes concat(BytesView a, BytesView b);
Bytes concat(BytesView a, BytesView b, BytesView c);

/// Byte-wise XOR; both inputs must have the same size.
Bytes xorBytes(BytesView a, BytesView b);

}  // namespace dosn::util
