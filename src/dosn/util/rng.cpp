#include "dosn/util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace dosn::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound == 0");
  // Rejection sampling to remove modulo bias. The rejection limit depends
  // only on the bound, and hot callers alternate between the same couple of
  // bounds, so the last two limits are memoized (identical values, one
  // division per draw instead of two).
  std::uint64_t limit;
  if (bound == lastBound_[0]) {
    limit = lastLimit_[0];
  } else if (bound == lastBound_[1]) {
    limit = lastLimit_[1];
  } else {
    limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    lastBound_[1] = lastBound_[0];
    lastLimit_[1] = lastLimit_[0];
    lastBound_[0] = bound;
    lastLimit_[0] = limit;
  }
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next();
  return lo + uniform(span + 1);
}

double Rng::uniformReal() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u = uniformReal();
  while (u <= 0.0) u = uniformReal();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniformReal();
  while (u1 <= 0.0) u1 = uniformReal();
  const double u2 = uniformReal();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

bool Rng::chance(double probability) {
  return uniformReal() < probability;
}

void Rng::fill(std::uint8_t* out, std::size_t len) {
  std::size_t i = 0;
  while (i + 8 <= len) {
    const std::uint64_t v = next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < len) {
    const std::uint64_t v = next();
    for (int b = 0; i < len; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
}

Bytes Rng::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n == 0");
  if (s <= 0.0) return static_cast<std::size_t>(uniform(n));
  // Inverse-CDF on the continuous Zipf approximation, clamped to [0, n).
  // P(X <= x) ~ H(x)/H(n) with H via the integral approximation.
  const double u = uniformReal();
  double value;
  if (s == 1.0) {
    value = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
  } else {
    const double t = 1.0 - s;
    const double hn = (std::pow(static_cast<double>(n) + 1.0, t) - 1.0) / t;
    value = std::pow(u * hn * t + 1.0, 1.0 / t) - 1.0;
  }
  auto rank = static_cast<std::size_t>(value);
  if (rank >= n) rank = n - 1;
  return rank;
}

Rng& globalRng() {
  static Rng rng{0xd05a600dull};
  return rng;
}

}  // namespace dosn::util
