#include "dosn/util/bytes.hpp"

#include <array>
#include <stdexcept>

namespace dosn::util {

Bytes toBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string toString(BytesView data) {
  return std::string(data.begin(), data.end());
}

std::string toHex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

namespace {

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<Bytes> fromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hexNibble(hex[i]);
    const int lo = hexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

namespace {

constexpr std::string_view kB64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string toBase64(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> fromBase64(std::string_view b64) {
  // Strip trailing padding.
  while (!b64.empty() && b64.back() == '=') b64.remove_suffix(1);
  Bytes out;
  out.reserve(b64.size() * 3 / 4);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : b64) {
    const int v = b64Value(c);
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  // Leftover bits must be zero padding of a valid encoding.
  if (bits >= 6) return std::nullopt;
  if ((acc & ((1u << bits) - 1)) != 0) return std::nullopt;
  return out;
}

bool constantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes concat(BytesView a, BytesView b, BytesView c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

Bytes xorBytes(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xorBytes: size mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

}  // namespace dosn::util
