// Length-checked binary serialization used for every wire/storage format in
// the library: envelopes, overlay messages, signed posts, proofs.
//
// Format: little-endian fixed-width integers; byte strings and text are
// length-prefixed with a u32. Reader throws CodecError on truncation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dosn/util/bytes.hpp"
#include "dosn/util/error.hpp"

namespace dosn::util {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v);
  /// Length-prefixed byte string.
  void bytes(BytesView data);
  /// Length-prefixed UTF-8 text.
  void str(std::string_view text);
  /// Raw bytes with no length prefix (fixed-size fields).
  void raw(BytesView data);

  const Bytes& buffer() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean();
  Bytes bytes();
  std::string str();
  /// Reads exactly n raw bytes.
  Bytes raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool atEnd() const { return remaining() == 0; }
  /// Throws CodecError unless the whole input was consumed.
  void expectEnd() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace dosn::util
