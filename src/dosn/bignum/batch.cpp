#include "dosn/bignum/batch.hpp"

#include <utility>

#include "dosn/bignum/modmath.hpp"
#include "dosn/util/error.hpp"

namespace dosn::bignum {

std::optional<std::vector<BigUint>> batchInvMod(
    const std::vector<BigUint>& values, const BigUint& m) {
  if (m.isZero()) throw util::DosnError("batchInvMod: zero modulus");
  if (m.isOdd() && m > BigUint(1)) {
    const MontgomeryContext ctx(m);
    return batchInvMod(values, ctx);
  }

  // Even-modulus path: division-based multiplies (rare — no prime modulus in
  // the library is even; kept for API completeness and differential tests).
  const std::size_t n = values.size();
  std::vector<BigUint> out(n);
  if (n == 0) return out;
  if (m == BigUint(1)) return out;  // invMod(a, 1) == 0 for every a

  std::vector<BigUint> prefix(n);
  prefix[0] = values[0] % m;
  for (std::size_t i = 1; i < n; ++i) {
    prefix[i] = mulMod(prefix[i - 1], values[i], m);
  }
  auto inv = invMod(prefix[n - 1], m);
  if (!inv) return std::nullopt;  // some gcd(v_i, m) != 1
  BigUint t = std::move(*inv);
  for (std::size_t i = n; i-- > 1;) {
    out[i] = mulMod(t, prefix[i - 1], m);
    t = mulMod(t, values[i], m);
  }
  out[0] = std::move(t);
  return out;
}

std::optional<std::vector<BigUint>> batchInvMod(
    const std::vector<BigUint>& values, const MontgomeryContext& ctx) {
  const std::size_t n = values.size();
  std::vector<BigUint> out(n);
  if (n == 0) return out;
  if (ctx.modulus() == BigUint(1)) return out;

  // Whole sweep in the Montgomery domain: one to/from conversion per element
  // plus 3(n-1) CIOS multiplies — the conversions don't multiply up like they
  // would through value-level mulMod calls.
  using Limbs = MontgomeryContext::Limbs;
  std::vector<Limbs> vm(n);
  std::vector<Limbs> prefix(n);
  for (std::size_t i = 0; i < n; ++i) vm[i] = ctx.toMont(values[i]);
  prefix[0] = vm[0];
  for (std::size_t i = 1; i < n; ++i) {
    prefix[i] = ctx.montMul(prefix[i - 1], vm[i]);
  }
  // fromMont strips the R factor the prefix carries; toMont after the
  // inversion restores it, so the peeled products land back on plain values
  // with a single montMul + fromMont each.
  auto inv = invMod(ctx.fromMont(prefix[n - 1]), ctx.modulus());
  if (!inv) return std::nullopt;  // some gcd(v_i, m) != 1
  Limbs t = ctx.toMont(*inv);
  for (std::size_t i = n; i-- > 1;) {
    out[i] = ctx.fromMont(ctx.montMul(t, prefix[i - 1]));
    t = ctx.montMul(t, vm[i]);
  }
  out[0] = ctx.fromMont(t);
  return out;
}

}  // namespace dosn::bignum
