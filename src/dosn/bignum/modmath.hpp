// Modular arithmetic over BigUint: the engine behind every discrete-log and
// RSA operation in dosn/pkcrypto.
#pragma once

#include <optional>

#include "dosn/bignum/biguint.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::bignum {

/// (a + b) mod m.
BigUint addMod(const BigUint& a, const BigUint& b, const BigUint& m);
/// (a - b) mod m (wraps around).
BigUint subMod(const BigUint& a, const BigUint& b, const BigUint& m);
/// (a * b) mod m.
BigUint mulMod(const BigUint& a, const BigUint& b, const BigUint& m);

/// base^exponent mod m. Odd moduli (every prime modulus in the library) take
/// the Montgomery/CIOS fast path (montgomery.hpp); even moduli take Barrett
/// reduction (barrett.hpp). m must be nonzero.
BigUint powMod(const BigUint& base, const BigUint& exponent, const BigUint& m);

/// The historical 4-bit-window square-and-multiply with a full division after
/// every multiply. Retained as the differential-testing reference for the
/// Montgomery path (and as the even-modulus fallback).
BigUint powModSimple(const BigUint& base, const BigUint& exponent,
                     const BigUint& m);

/// Greatest common divisor (binary-free Euclid).
BigUint gcd(BigUint a, BigUint b);

/// Jacobi symbol (a/n) in {-1, 0, 1}; n must be odd and nonzero. Binary
/// algorithm (strip twos via the supplement, quadratic-reciprocity swap), so
/// it costs O(bits^2) shifts/reductions where the Euler-criterion exponent
/// x^((n-1)/2) costs a full O(bits^3) powMod. For prime n, (a/n) == 1 iff a
/// is a nonzero quadratic residue mod n.
int jacobi(BigUint a, BigUint n);

/// Multiplicative inverse of a mod m, if gcd(a, m) == 1.
std::optional<BigUint> invMod(const BigUint& a, const BigUint& m);

/// Uniform value in [0, bound) (bound > 0), via rejection sampling.
BigUint randomBelow(const BigUint& bound, util::Rng& rng);

/// Uniform value in [2, bound-1]; bound must be >= 4.
BigUint randomUnit(const BigUint& bound, util::Rng& rng);

/// Uniform value with exactly `bits` bits (MSB forced to 1).
BigUint randomBits(std::size_t bits, util::Rng& rng);

}  // namespace dosn::bignum
