// Arbitrary-precision unsigned integers — the substrate for all public-key
// cryptography in this repository (RSA, ElGamal, Schnorr, DH, OPRF).
//
// Representation: little-endian vector of 32-bit limbs with no trailing zero
// limbs (zero is the empty vector). Multiplication is schoolbook below 32
// limbs and Karatsuba above (the crossover where the extra additions pay for
// themselves at these operand shapes); division is Knuth Algorithm D.
// schoolbookMul() retains the quadratic path as the differential-testing
// reference for the Karatsuba split.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dosn/util/bytes.hpp"

namespace dosn::bignum {

class BigUint;

/// Quotient/remainder pair returned by BigUint::divmod.
struct DivMod;

class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Parses lower/upper-case hex (no prefix). std::nullopt on bad input.
  static std::optional<BigUint> fromHex(std::string_view hex);
  /// Parses a base-10 string.
  static std::optional<BigUint> fromDecimal(std::string_view dec);
  /// Big-endian byte import (leading zeros fine).
  static BigUint fromBytes(util::BytesView data);
  /// Little-endian 64-bit word import (trailing zeros fine). The inverse of
  /// words64 — the bridge to the Montgomery engine's limb format.
  static BigUint fromWords64(const std::vector<std::uint64_t>& words);

  bool isZero() const { return limbs_.empty(); }
  bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool isEven() const { return !isOdd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bitLength() const;
  /// Value of bit i (LSB = bit 0).
  bool bit(std::size_t i) const;

  /// Fits-in-u64 accessor; throws if the value is wider.
  std::uint64_t toUint64() const;

  std::string toHex() const;
  std::string toDecimal() const;
  /// Big-endian bytes, minimal length (empty for zero).
  util::Bytes toBytes() const;
  /// Big-endian bytes left-padded to exactly `width` bytes; throws if the
  /// value doesn't fit.
  util::Bytes toBytesPadded(std::size_t width) const;

  // Comparison.
  int compare(const BigUint& other) const;
  bool operator==(const BigUint& o) const { return compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return compare(o) != 0; }
  bool operator<(const BigUint& o) const { return compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return compare(o) >= 0; }

  // Arithmetic. Subtraction requires *this >= other (throws otherwise).
  BigUint operator+(const BigUint& o) const;
  BigUint operator-(const BigUint& o) const;
  BigUint operator*(const BigUint& o) const;
  /// Quotient and remainder; divisor must be nonzero.
  DivMod divmod(const BigUint& divisor) const;
  BigUint operator/(const BigUint& o) const;
  BigUint operator%(const BigUint& o) const;

  BigUint operator<<(std::size_t bits) const;
  BigUint operator>>(std::size_t bits) const;

  BigUint& operator+=(const BigUint& o) { return *this = *this + o; }
  BigUint& operator-=(const BigUint& o) { return *this = *this - o; }
  BigUint& operator*=(const BigUint& o) { return *this = *this * o; }

  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

  /// Little-endian 64-bit words, zero-padded to exactly `count`; throws if
  /// the value needs more than `count` words.
  std::vector<std::uint64_t> words64(std::size_t count) const;

 private:
  void trim();

  friend BigUint schoolbookMul(const BigUint& a, const BigUint& b);

  std::vector<std::uint32_t> limbs_;
};

/// The quadratic multiply, regardless of operand size — the retained simple
/// path operator* is differential-tested against (operator* switches to
/// Karatsuba above ~32 limbs).
BigUint schoolbookMul(const BigUint& a, const BigUint& b);

struct DivMod {
  BigUint quotient;
  BigUint remainder;
};

}  // namespace dosn::bignum
