// Primality testing and prime generation for RSA/DH parameter setup.
#pragma once

#include "dosn/bignum/biguint.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::bignum {

/// Miller-Rabin with `rounds` random bases (plus small trial division).
bool isProbablePrime(const BigUint& n, util::Rng& rng, int rounds = 24);

/// Random prime with exactly `bits` bits.
BigUint randomPrime(std::size_t bits, util::Rng& rng);

/// Safe prime p = 2q + 1 with q prime; returns p (q = (p-1)/2).
/// Expensive for large sizes — benches use the cached groups in
/// dosn/pkcrypto/group.hpp instead of regenerating.
BigUint randomSafePrime(std::size_t bits, util::Rng& rng);

}  // namespace dosn::bignum
