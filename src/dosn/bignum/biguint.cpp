#include "dosn/bignum/biguint.hpp"

#include <algorithm>
#include <stdexcept>

#include "dosn/util/error.hpp"

namespace dosn::bignum {

namespace {

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

using LimbVec = std::vector<std::uint32_t>;

// Below this many limbs per operand (32 limbs = 1024 bits) the quadratic
// multiply wins; above it Karatsuba's three half-size products beat four.
constexpr std::size_t kKaratsubaLimbs = 32;

// Schoolbook product of two raw limb spans; result has an + bn limbs (may
// carry trailing zeros — callers trim).
LimbVec mulSchoolbookSpans(const std::uint32_t* a, std::size_t an,
                           const std::uint32_t* b, std::size_t bn) {
  LimbVec out(an + bn, 0);
  for (std::size_t i = 0; i < an; ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < bn; ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + bn] = static_cast<std::uint32_t>(carry);
  }
  return out;
}

// Plain limb-span addition (little-endian, carry kept).
LimbVec addSpans(const std::uint32_t* a, std::size_t an,
                 const std::uint32_t* b, std::size_t bn) {
  const std::size_t n = std::max(an, bn);
  LimbVec out;
  out.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < an) sum += a[i];
    if (i < bn) sum += b[i];
    out.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

// a -= b in place; requires a >= b (guaranteed by the Karatsuba identity
// z1 = (a0+a1)(b0+b1) - z0 - z2 >= 0).
void subInPlace(LimbVec& a, const LimbVec& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<std::uint32_t>(diff);
  }
}

void trimTrailingZeroLimbs(LimbVec& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

// acc[off..] += v with carry propagation. acc is sized for the full product
// and callers trim v to its value length first, so any limb of v that would
// land past acc.size() is provably zero — the bound check makes running off
// the end impossible even for degenerate inputs.
void addInto(LimbVec& acc, std::size_t off, const LimbVec& v) {
  std::uint64_t carry = 0;
  std::size_t k = off;
  for (std::size_t i = 0; i < v.size() && k < acc.size(); ++i, ++k) {
    const std::uint64_t sum = static_cast<std::uint64_t>(acc[k]) + v[i] + carry;
    acc[k] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  while (carry && k < acc.size()) {
    const std::uint64_t sum = static_cast<std::uint64_t>(acc[k]) + carry;
    acc[k] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
    ++k;
  }
}

// Karatsuba on raw spans: split both operands at limb m, recurse on the three
// half-size products, recombine as z0 + z1*B^m + z2*B^2m.
LimbVec mulKaratsubaSpans(const std::uint32_t* a, std::size_t an,
                          const std::uint32_t* b, std::size_t bn) {
  if (an == 0 || bn == 0) return {};
  if (std::min(an, bn) < kKaratsubaLimbs) {
    return mulSchoolbookSpans(a, an, b, bn);
  }
  const std::size_t m = (std::max(an, bn) + 1) / 2;
  const std::size_t a0n = std::min(an, m);
  const std::size_t b0n = std::min(bn, m);
  const std::uint32_t* a1 = a + a0n;
  const std::uint32_t* b1 = b + b0n;
  const std::size_t a1n = an - a0n;
  const std::size_t b1n = bn - b0n;

  LimbVec z0 = mulKaratsubaSpans(a, a0n, b, b0n);
  LimbVec z2 = mulKaratsubaSpans(a1, a1n, b1, b1n);
  const LimbVec sa = addSpans(a, a0n, a1, a1n);
  const LimbVec sb = addSpans(b, b0n, b1, b1n);
  LimbVec z1 = mulKaratsubaSpans(sa.data(), sa.size(), sb.data(), sb.size());
  subInPlace(z1, z0);
  subInPlace(z1, z2);

  // Trim each partial product to its value length before recombination. For
  // asymmetric splits (e.g. an=32, bn=63 makes a1 empty) z1's vector keeps
  // the full (a0+a1)(b0+b1) product length even though the subtractions shrink
  // its value, so off + z1.size() can exceed the an+bn output allocation —
  // trimming restores the invariant m + size(z1) <= an + bn that the
  // recombination relies on.
  trimTrailingZeroLimbs(z0);
  trimTrailingZeroLimbs(z1);
  trimTrailingZeroLimbs(z2);

  LimbVec out(an + bn, 0);
  addInto(out, 0, z0);
  addInto(out, m, z1);
  if (!z2.empty()) addInto(out, 2 * m, z2);
  return out;
}

}  // namespace

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::optional<BigUint> BigUint::fromHex(std::string_view hex) {
  if (hex.empty()) return std::nullopt;
  BigUint out;
  // Parse from the least-significant end, 8 hex digits per limb.
  std::size_t end = hex.size();
  while (end > 0) {
    const std::size_t begin = end >= 8 ? end - 8 : 0;
    std::uint32_t limb = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const int v = hexNibble(hex[i]);
      if (v < 0) return std::nullopt;
      limb = (limb << 4) | static_cast<std::uint32_t>(v);
    }
    out.limbs_.push_back(limb);
    end = begin;
  }
  out.trim();
  return out;
}

std::optional<BigUint> BigUint::fromDecimal(std::string_view dec) {
  if (dec.empty()) return std::nullopt;
  BigUint out;
  for (char c : dec) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * BigUint(10) + BigUint(static_cast<std::uint64_t>(c - '0'));
  }
  return out;
}

BigUint BigUint::fromBytes(util::BytesView data) {
  BigUint out;
  for (std::uint8_t b : data) {
    out = (out << 8) + BigUint(b);
  }
  return out;
}

BigUint BigUint::fromWords64(const std::vector<std::uint64_t>& words) {
  BigUint out;
  out.limbs_.reserve(words.size() * 2);
  for (const std::uint64_t w : words) {
    out.limbs_.push_back(static_cast<std::uint32_t>(w));
    out.limbs_.push_back(static_cast<std::uint32_t>(w >> 32));
  }
  out.trim();
  return out;
}

std::vector<std::uint64_t> BigUint::words64(std::size_t count) const {
  if (limbs_.size() > count * 2) {
    throw util::DosnError("BigUint::words64: value too wide");
  }
  std::vector<std::uint64_t> out(count, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(limbs_[i]) << ((i % 2) * 32);
  }
  return out;
}

std::size_t BigUint::bitLength() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUint::toUint64() const {
  if (limbs_.size() > 2) throw util::DosnError("BigUint::toUint64: too wide");
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

std::string BigUint::toHex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t firstNonZero = out.find_first_not_of('0');
  return out.substr(firstNonZero);
}

std::string BigUint::toDecimal() const {
  if (limbs_.empty()) return "0";
  std::string out;
  BigUint value = *this;
  const BigUint ten(10);
  while (!value.isZero()) {
    auto [q, r] = value.divmod(ten);
    out.push_back(static_cast<char>('0' + r.toUint64()));
    value = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

util::Bytes BigUint::toBytes() const {
  util::Bytes out;
  const std::size_t bytes = (bitLength() + 7) / 8;
  out.reserve(bytes);
  for (std::size_t i = bytes; i-- > 0;) {
    const std::size_t limb = i / 4;
    const std::size_t shift = (i % 4) * 8;
    out.push_back(static_cast<std::uint8_t>(limbs_[limb] >> shift));
  }
  return out;
}

util::Bytes BigUint::toBytesPadded(std::size_t width) const {
  util::Bytes minimal = toBytes();
  if (minimal.size() > width) {
    throw util::DosnError("BigUint::toBytesPadded: value too wide");
  }
  util::Bytes out(width - minimal.size(), 0);
  out.insert(out.end(), minimal.begin(), minimal.end());
  return out;
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::operator+(const BigUint& o) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUint BigUint::operator-(const BigUint& o) const {
  if (*this < o) throw util::DosnError("BigUint: negative subtraction");
  BigUint out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigUint BigUint::operator*(const BigUint& o) const {
  if (isZero() || o.isZero()) return BigUint{};
  BigUint out;
  if (std::min(limbs_.size(), o.limbs_.size()) >= kKaratsubaLimbs) {
    out.limbs_ = mulKaratsubaSpans(limbs_.data(), limbs_.size(),
                                   o.limbs_.data(), o.limbs_.size());
  } else {
    out.limbs_ = mulSchoolbookSpans(limbs_.data(), limbs_.size(),
                                    o.limbs_.data(), o.limbs_.size());
  }
  out.trim();
  return out;
}

BigUint schoolbookMul(const BigUint& a, const BigUint& b) {
  if (a.isZero() || b.isZero()) return BigUint{};
  BigUint out;
  out.limbs_ = mulSchoolbookSpans(a.limbs_.data(), a.limbs_.size(),
                                  b.limbs_.data(), b.limbs_.size());
  out.trim();
  return out;
}

BigUint BigUint::operator<<(std::size_t bits) const {
  if (isZero() || bits == 0) return *this;
  const std::size_t limbShift = bits / 32;
  const std::size_t bitShift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limbShift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limbShift] |= limbs_[i] << bitShift;
    if (bitShift != 0) {
      out.limbs_[i + limbShift + 1] |=
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(limbs_[i]) >> (32 - bitShift));
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::operator>>(std::size_t bits) const {
  if (isZero() || bits == 0) return *this;
  const std::size_t limbShift = bits / 32;
  const std::size_t bitShift = bits % 32;
  if (limbShift >= limbs_.size()) return BigUint{};
  BigUint out;
  out.limbs_.assign(limbs_.size() - limbShift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limbShift] >> bitShift;
    if (bitShift != 0 && i + limbShift + 1 < limbs_.size()) {
      out.limbs_[i] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(limbs_[i + limbShift + 1]) << (32 - bitShift));
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::operator/(const BigUint& o) const { return divmod(o).quotient; }

BigUint BigUint::operator%(const BigUint& o) const { return divmod(o).remainder; }

DivMod BigUint::divmod(const BigUint& divisor) const {
  if (divisor.isZero()) throw util::DosnError("BigUint: division by zero");
  if (*this < divisor) return {BigUint{}, *this};
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = divisor.limbs_[0];
    BigUint q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigUint(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set.
  const std::size_t n = divisor.limbs_.size();
  std::size_t shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUint u = *this << shift;
  const BigUint v = divisor << shift;
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra headroom limb
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigUint q;
  q.limbs_.assign(m + 1, 0);

  const std::uint64_t base = std::uint64_t{1} << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (un[j+n]*b + un[j+n-1]) / vn[n-1].
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= base ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= base) break;
    }

    // Multiply-subtract: un[j..j+n] -= qhat * vn.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * vn[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(un[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t topDiff = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    if (topDiff < 0) {
      // q_hat was one too large: add back.
      topDiff += static_cast<std::int64_t>(base);
      --qhat;
      std::uint64_t addCarry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + addCarry;
        un[i + j] = static_cast<std::uint32_t>(sum);
        addCarry = sum >> 32;
      }
      topDiff += static_cast<std::int64_t>(addCarry);
      topDiff &= static_cast<std::int64_t>(base - 1);
    }
    un[j + n] = static_cast<std::uint32_t>(topDiff);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigUint r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  return {std::move(q), r >> shift};
}

}  // namespace dosn::bignum
