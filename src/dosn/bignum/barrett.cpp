#include "dosn/bignum/barrett.hpp"

#include <array>

#include "dosn/util/error.hpp"

namespace dosn::bignum {

BarrettReducer::BarrettReducer(const BigUint& modulus) : m_(modulus) {
  if (m_ <= BigUint(1)) {
    throw util::DosnError("BarrettReducer: modulus must be > 1");
  }
  k_ = (m_.bitLength() + 31) / 32;
  mu_ = (BigUint(1) << (64 * k_)) / m_;
}

BigUint BarrettReducer::reduce(const BigUint& x) const {
  if (x < m_) return x;
  if (x.bitLength() > 64 * k_) return x % m_;  // outside the precomputed range
  const BigUint q1 = x >> (32 * (k_ - 1));
  const BigUint q3 = (q1 * mu_) >> (32 * (k_ + 1));
  BigUint r = x - q3 * m_;
  while (r >= m_) r = r - m_;  // at most two iterations (see header)
  return r;
}

BigUint BarrettReducer::mulMod(const BigUint& a, const BigUint& b) const {
  return reduce(reduce(a) * reduce(b));
}

BigUint BarrettReducer::powMod(const BigUint& base,
                               const BigUint& exponent) const {
  const std::size_t bits = exponent.bitLength();
  if (bits == 0) return BigUint(1) % m_;

  std::array<BigUint, 16> table;
  table[0] = BigUint(1);
  table[1] = reduce(base);
  for (std::size_t i = 2; i < table.size(); ++i) {
    table[i] = reduce(table[i - 1] * table[1]);
  }

  BigUint result(1);
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {
      for (int i = 0; i < 4; ++i) result = reduce(result * result);
    }
    std::uint32_t window = 0;
    for (int i = 3; i >= 0; --i) {
      window = (window << 1) |
               static_cast<std::uint32_t>(
                   exponent.bit(w * 4 + static_cast<std::size_t>(i)));
    }
    if (window != 0) result = reduce(result * table[window]);
  }
  return result;
}

}  // namespace dosn::bignum
