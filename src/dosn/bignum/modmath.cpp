#include "dosn/bignum/modmath.hpp"

#include <array>

#include "dosn/bignum/barrett.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/util/error.hpp"

namespace dosn::bignum {

BigUint addMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a + b) % m;
}

BigUint subMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  const BigUint ar = a % m;
  const BigUint br = b % m;
  if (ar >= br) return ar - br;
  return m - (br - ar);
}

BigUint mulMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a * b) % m;
}

BigUint powMod(const BigUint& base, const BigUint& exponent, const BigUint& m) {
  if (m.isZero()) throw util::DosnError("powMod: zero modulus");
  if (m == BigUint(1)) return BigUint{};
  if (m.isOdd()) return MontgomeryContext(m).powMod(base, exponent);
  return BarrettReducer(m).powMod(base, exponent);
}

BigUint powModSimple(const BigUint& base, const BigUint& exponent,
                     const BigUint& m) {
  if (m.isZero()) throw util::DosnError("powMod: zero modulus");
  if (m == BigUint(1)) return BigUint{};
  const std::size_t bits = exponent.bitLength();
  if (bits == 0) return BigUint(1);

  // Precompute base^0..base^15 mod m for a 4-bit window.
  std::array<BigUint, 16> table;
  table[0] = BigUint(1);
  table[1] = base % m;
  for (std::size_t i = 2; i < table.size(); ++i) {
    table[i] = mulMod(table[i - 1], table[1], m);
  }

  BigUint result(1);
  // Process the exponent MSB-first in 4-bit windows.
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {
      for (int i = 0; i < 4; ++i) result = mulMod(result, result, m);
    }
    std::uint32_t window = 0;
    for (int i = 3; i >= 0; --i) {
      window = (window << 1) |
               static_cast<std::uint32_t>(exponent.bit(w * 4 + static_cast<std::size_t>(i)));
    }
    if (window != 0) result = mulMod(result, table[window], m);
  }
  return result;
}

BigUint gcd(BigUint a, BigUint b) {
  while (!b.isZero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

int jacobi(BigUint a, BigUint n) {
  if (!n.isOdd()) throw util::DosnError("jacobi: modulus must be odd");
  a = a % n;
  int result = 1;
  while (!a.isZero()) {
    while (a.isEven()) {
      a = a >> 1;
      // (2/n) = -1 iff n ≡ 3 or 5 (mod 8).
      const std::uint32_t n8 = n.limbs()[0] & 7;
      if (n8 == 3 || n8 == 5) result = -result;
    }
    // Reciprocity: both operands are odd here; the swap flips the sign iff
    // both are ≡ 3 (mod 4).
    std::swap(a, n);
    if ((a.limbs()[0] & 3) == 3 && (n.limbs()[0] & 3) == 3) result = -result;
    a = a % n;
  }
  return n == BigUint(1) ? result : 0;
}

std::optional<BigUint> invMod(const BigUint& a, const BigUint& m) {
  if (m.isZero()) throw util::DosnError("invMod: zero modulus");
  // Extended Euclid with coefficients tracked as (value, isNegative).
  BigUint r0 = m;
  BigUint r1 = a % m;
  BigUint t0{};     // coefficient of m
  BigUint t1(1);    // coefficient of a
  bool t0Neg = false;
  bool t1Neg = false;

  while (!r1.isZero()) {
    const auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1 with sign tracking.
    const BigUint qt1 = q * t1;
    BigUint t2;
    bool t2Neg;
    if (t0Neg == t1Neg) {
      // Same sign: t0 - q*t1 may flip sign.
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2Neg = t0Neg;
      } else {
        t2 = qt1 - t0;
        t2Neg = !t0Neg;
      }
    } else {
      // Opposite signs: magnitudes add; sign follows t0.
      t2 = t0 + qt1;
      t2Neg = t0Neg;
    }
    r0 = std::move(r1);
    r1 = r2;
    t0 = std::move(t1);
    t0Neg = t1Neg;
    t1 = std::move(t2);
    t1Neg = t2Neg;
  }

  if (r0 != BigUint(1)) return std::nullopt;  // not coprime
  BigUint inv = t0 % m;
  if (t0Neg && !inv.isZero()) inv = m - inv;
  return inv;
}

BigUint randomBelow(const BigUint& bound, util::Rng& rng) {
  if (bound.isZero()) throw util::DosnError("randomBelow: zero bound");
  const std::size_t bits = bound.bitLength();
  const std::size_t bytes = (bits + 7) / 8;
  const std::size_t extraBits = bytes * 8 - bits;
  while (true) {
    util::Bytes buf = rng.bytes(bytes);
    if (!buf.empty()) {
      buf[0] &= static_cast<std::uint8_t>(0xff >> extraBits);
    }
    BigUint candidate = BigUint::fromBytes(buf);
    if (candidate < bound) return candidate;
  }
}

BigUint randomUnit(const BigUint& bound, util::Rng& rng) {
  if (bound < BigUint(4)) throw util::DosnError("randomUnit: bound too small");
  while (true) {
    BigUint candidate = randomBelow(bound, rng);
    if (candidate >= BigUint(2) && candidate < bound - BigUint(1)) {
      return candidate;
    }
  }
}

BigUint randomBits(std::size_t bits, util::Rng& rng) {
  if (bits == 0) return BigUint{};
  const std::size_t bytes = (bits + 7) / 8;
  util::Bytes buf = rng.bytes(bytes);
  const std::size_t extraBits = bytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xff >> extraBits);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> extraBits);
  return BigUint::fromBytes(buf);
}

}  // namespace dosn::bignum
