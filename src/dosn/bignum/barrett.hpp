// Barrett reduction: division-free modular arithmetic for moduli where the
// Montgomery machinery does not apply (even moduli — R = 2^(64k) and n must
// be coprime there). One setup division computes mu = floor(b^(2k) / m) with
// b = 2^32; every later reduction of an x < b^(2k) is two multiplies, two
// shifts, and at most two correcting subtractions:
//
//   q3 = ((x >> 32(k-1)) * mu) >> 32(k+1)      — an underestimate of x / m
//   r  = x - q3 * m                            — in [0, 3m), peel m off
//
// q3 <= floor(x/m) by construction, and the classic bound (Menezes, Handbook
// of Applied Cryptography, Alg. 14.42) gives floor(x/m) - q3 <= 2, so r is
// nonnegative and the correction loop runs at most twice.
//
// bignum::powMod dispatches here for even moduli > 1 and keeps powModSimple
// as the retained differential-testing reference.
#pragma once

#include <cstddef>

#include "dosn/bignum/biguint.hpp"

namespace dosn::bignum {

class BarrettReducer {
 public:
  /// Throws DosnError unless modulus > 1 (any parity accepted).
  explicit BarrettReducer(const BigUint& modulus);

  const BigUint& modulus() const { return m_; }

  /// x mod m. Division-free for x < 2^(64k) (covers any product of two
  /// reduced operands); wider inputs fall back to one exact division.
  BigUint reduce(const BigUint& x) const;

  /// (a * b) mod m via reduce; equals mulMod(a, b, m).
  BigUint mulMod(const BigUint& a, const BigUint& b) const;

  /// base^exponent mod m, 4-bit fixed window over Barrett multiplies; equals
  /// powModSimple(base, exponent, m).
  BigUint powMod(const BigUint& base, const BigUint& exponent) const;

 private:
  BigUint m_;
  BigUint mu_;     // floor(b^(2k) / m), b = 2^32
  std::size_t k_;  // 32-bit limbs in m
};

}  // namespace dosn::bignum
