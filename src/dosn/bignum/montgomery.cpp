#include "dosn/bignum/montgomery.hpp"

#include <algorithm>
#include <array>

#include "dosn/util/error.hpp"

namespace dosn::bignum {

namespace {

using u128 = unsigned __int128;

// n0^{-1} mod 2^64 by Newton iteration: x = n0 is correct mod 2^3 for odd
// n0, and each step doubles the number of valid low bits.
std::uint64_t invertWord(std::uint64_t n0) {
  std::uint64_t x = n0;
  for (int i = 0; i < 6; ++i) x *= 2 - n0 * x;
  return x;
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigUint& modulus)
    : modulus_(modulus) {
  if (modulus_.isEven() || modulus_ <= BigUint(1)) {
    throw util::DosnError("MontgomeryContext: modulus must be odd and > 1");
  }
  const std::size_t k = (modulus_.bitLength() + 63) / 64;
  n_ = modulus_.words64(k);
  nInv_ = ~invertWord(n_[0]) + 1;  // -n^{-1} mod 2^64
  // R^2 mod n with R = 2^(64k), via one BigUint division at setup; every
  // later reduction is division-free.
  rr_ = ((BigUint(1) << (2 * 64 * k)) % modulus_).words64(k);
  Limbs unit(k, 0);
  unit[0] = 1;
  one_ = montMul(unit, rr_);
}

MontgomeryContext::Limbs MontgomeryContext::montMul(const Limbs& a,
                                                    const Limbs& b) const {
  // CIOS: interleaves the schoolbook multiply with the Montgomery reduction
  // one word at a time. Invariant (Koç et al.): t stays below 2n shifted, so
  // t[k+1] is at most 1 and a single conditional subtraction finishes.
  const std::size_t k = n_.size();
  Limbs t(k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t ai = a[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    const u128 top = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<std::uint64_t>(top);
    t[k + 1] = static_cast<std::uint64_t>(top >> 64);

    const std::uint64_t m = t[0] * nInv_;
    // t[0] + m*n[0] is 0 mod 2^64 by choice of m; keep only its carry.
    carry =
        static_cast<std::uint64_t>((static_cast<u128>(m) * n_[0] + t[0]) >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      const u128 cur = static_cast<u128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    const u128 tail = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<std::uint64_t>(tail);
    t[k] = t[k + 1] + static_cast<std::uint64_t>(tail >> 64);
  }

  // Result is t[0..k] in [0, 2n); subtract n once if needed so the
  // representation stays canonical (< n).
  bool subtract = t[k] != 0;
  if (!subtract) {
    subtract = true;  // t == n also subtracts, down to zero
    for (std::size_t j = k; j-- > 0;) {
      if (t[j] != n_[j]) {
        subtract = t[j] > n_[j];
        break;
      }
    }
  }
  Limbs out(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k));
  if (subtract) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint64_t d1 = out[j] - n_[j];
      const std::uint64_t b1 = out[j] < n_[j];
      const std::uint64_t d2 = d1 - borrow;
      const std::uint64_t b2 = d1 < borrow;
      out[j] = d2;
      borrow = b1 | b2;
    }
  }
  return out;
}

MontgomeryContext::Limbs MontgomeryContext::toMont(const BigUint& x) const {
  const BigUint reduced = x >= modulus_ ? x % modulus_ : x;
  return montMul(reduced.words64(n_.size()), rr_);
}

BigUint MontgomeryContext::fromMont(const Limbs& x) const {
  Limbs unit(n_.size(), 0);
  unit[0] = 1;
  return BigUint::fromWords64(montMul(x, unit));
}

MontgomeryContext::Limbs MontgomeryContext::powMont(
    const Limbs& baseMont, const BigUint& exponent) const {
  const std::size_t bits = exponent.bitLength();
  if (bits == 0) return one_;

  // Sliding-window recoding: only odd powers base^1, base^3, .. base^(2^w - 1)
  // are tabulated (half the table of a fixed window), and runs of zero bits
  // cost squarings only. Width by exponent size: ~bits/(w+1) multiplies after
  // the 2^(w-1)-entry table build.
  const std::size_t w = bits <= 128 ? 4 : (bits <= 768 ? 5 : 6);
  const std::size_t tableSize = std::size_t{1} << (w - 1);
  std::vector<Limbs> table;
  table.reserve(tableSize);
  table.push_back(baseMont);
  if (tableSize > 1) {
    const Limbs baseSq = montMul(baseMont, baseMont);
    for (std::size_t i = 1; i < tableSize; ++i) {
      table.push_back(montMul(table.back(), baseSq));
    }
  }

  Limbs result;
  bool started = false;
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!exponent.bit(static_cast<std::size_t>(i))) {
      result = montMul(result, result);  // started is always true here: the
      --i;                               // top bit of the exponent is set
      continue;
    }
    // Greedy window [i..l] with both end bits set, at most w bits wide; the
    // window value is therefore odd and indexes the table directly.
    std::ptrdiff_t l =
        i >= static_cast<std::ptrdiff_t>(w) - 1 ? i - static_cast<std::ptrdiff_t>(w) + 1 : 0;
    while (!exponent.bit(static_cast<std::size_t>(l))) ++l;
    std::uint32_t window = 0;
    for (std::ptrdiff_t j = i; j >= l; --j) {
      window = (window << 1) |
               static_cast<std::uint32_t>(exponent.bit(static_cast<std::size_t>(j)));
    }
    if (started) {
      for (std::ptrdiff_t j = l; j <= i; ++j) result = montMul(result, result);
      result = montMul(result, table[(window - 1) >> 1]);
    } else {
      result = table[(window - 1) >> 1];
      started = true;
    }
    i = l - 1;
  }
  return result;
}

BigUint MontgomeryContext::powMod(const BigUint& base,
                                  const BigUint& exponent) const {
  return fromMont(powMont(toMont(base), exponent));
}

BigUint MontgomeryContext::mulMod(const BigUint& a, const BigUint& b) const {
  return fromMont(montMul(toMont(a), toMont(b)));
}

FixedBasePowerTable::FixedBasePowerTable(const BigUint& base,
                                         const BigUint& modulus,
                                         std::size_t maxExponentBits)
    : ctx_(modulus),
      base_(base % modulus),
      windows_((std::max<std::size_t>(maxExponentBits, 1) + 3) / 4) {
  table_.reserve(windows_ * 15);
  MontgomeryContext::Limbs cur = ctx_.toMont(base_);
  for (std::size_t i = 0; i < windows_; ++i) {
    MontgomeryContext::Limbs power = cur;
    for (std::size_t j = 1; j <= 15; ++j) {
      table_.push_back(power);
      power = ctx_.montMul(power, cur);
    }
    cur = std::move(power);  // cur^16: the next window's unit step
  }
}

BigUint FixedBasePowerTable::pow(const BigUint& exponent) const {
  const std::size_t bits = exponent.bitLength();
  if (bits > windows_ * 4) return ctx_.powMod(base_, exponent);
  MontgomeryContext::Limbs acc = ctx_.one();
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = 0; w < windows; ++w) {
    std::uint32_t digit = 0;
    for (int i = 3; i >= 0; --i) {
      digit = (digit << 1) |
              static_cast<std::uint32_t>(
                  exponent.bit(w * 4 + static_cast<std::size_t>(i)));
    }
    if (digit != 0) acc = ctx_.montMul(acc, table_[w * 15 + digit - 1]);
  }
  return ctx_.fromMont(acc);
}

}  // namespace dosn::bignum
