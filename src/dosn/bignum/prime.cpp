#include "dosn/bignum/prime.hpp"

#include <array>

#include "dosn/bignum/modmath.hpp"
#include "dosn/util/error.hpp"

namespace dosn::bignum {

namespace {

constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool millerRabinRound(const BigUint& n, const BigUint& d, std::size_t r,
                      const BigUint& base) {
  BigUint x = powMod(base, d, n);
  const BigUint nMinus1 = n - BigUint(1);
  if (x == BigUint(1) || x == nMinus1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = mulMod(x, x, n);
    if (x == nMinus1) return true;
  }
  return false;
}

}  // namespace

bool isProbablePrime(const BigUint& n, util::Rng& rng, int rounds) {
  if (n < BigUint(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return true;
    if ((n % bp).isZero()) return false;
  }
  // Write n-1 = d * 2^r with d odd.
  const BigUint nMinus1 = n - BigUint(1);
  BigUint d = nMinus1;
  std::size_t r = 0;
  while (d.isEven()) {
    d = d >> 1;
    ++r;
  }
  for (int i = 0; i < rounds; ++i) {
    const BigUint base = randomUnit(n, rng);
    if (!millerRabinRound(n, d, r, base)) return false;
  }
  return true;
}

BigUint randomPrime(std::size_t bits, util::Rng& rng) {
  if (bits < 8) throw util::DosnError("randomPrime: need >= 8 bits");
  while (true) {
    BigUint candidate = randomBits(bits, rng);
    if (candidate.isEven()) candidate += BigUint(1);
    if (isProbablePrime(candidate, rng)) return candidate;
  }
}

BigUint randomSafePrime(std::size_t bits, util::Rng& rng) {
  if (bits < 16) throw util::DosnError("randomSafePrime: need >= 16 bits");
  while (true) {
    const BigUint q = randomPrime(bits - 1, rng);
    const BigUint p = (q << 1) + BigUint(1);
    if (p.bitLength() == bits && isProbablePrime(p, rng, 12)) return p;
  }
}

}  // namespace dosn::bignum
