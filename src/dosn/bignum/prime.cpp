#include "dosn/bignum/prime.hpp"

#include <array>

#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/util/error.hpp"

namespace dosn::bignum {

namespace {

constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One witness round, entirely in the Montgomery domain: the exponentiation
// and every follow-up squaring are CIOS multiplies, and since Montgomery
// representatives are canonical (< n), the ±1 comparisons are plain
// limb-vector equality against precomputed Mont(1) / Mont(n-1).
bool millerRabinRound(const MontgomeryContext& ctx, const BigUint& d,
                      std::size_t r, const BigUint& base,
                      const MontgomeryContext::Limbs& montNMinus1) {
  MontgomeryContext::Limbs x = ctx.powMont(ctx.toMont(base), d);
  if (x == ctx.one() || x == montNMinus1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = ctx.montMul(x, x);
    if (x == montNMinus1) return true;
  }
  return false;
}

}  // namespace

bool isProbablePrime(const BigUint& n, util::Rng& rng, int rounds) {
  if (n < BigUint(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return true;
    if ((n % bp).isZero()) return false;
  }
  // n survived trial division by 2, so it is odd — Montgomery applies.
  // Write n-1 = d * 2^r with d odd.
  const BigUint nMinus1 = n - BigUint(1);
  BigUint d = nMinus1;
  std::size_t r = 0;
  while (d.isEven()) {
    d = d >> 1;
    ++r;
  }
  const MontgomeryContext ctx(n);
  const MontgomeryContext::Limbs montNMinus1 = ctx.toMont(nMinus1);
  for (int i = 0; i < rounds; ++i) {
    const BigUint base = randomUnit(n, rng);
    if (!millerRabinRound(ctx, d, r, base, montNMinus1)) return false;
  }
  return true;
}

BigUint randomPrime(std::size_t bits, util::Rng& rng) {
  if (bits < 8) throw util::DosnError("randomPrime: need >= 8 bits");
  while (true) {
    BigUint candidate = randomBits(bits, rng);
    if (candidate.isEven()) candidate += BigUint(1);
    if (isProbablePrime(candidate, rng)) return candidate;
  }
}

BigUint randomSafePrime(std::size_t bits, util::Rng& rng) {
  if (bits < 16) throw util::DosnError("randomSafePrime: need >= 16 bits");
  while (true) {
    const BigUint q = randomPrime(bits - 1, rng);
    const BigUint p = (q << 1) + BigUint(1);
    if (p.bitLength() == bits && isProbablePrime(p, rng, 12)) return p;
  }
}

}  // namespace dosn::bignum
