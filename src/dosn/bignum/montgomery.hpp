// Montgomery-form modular arithmetic over 64-bit limbs — the fast path under
// every modular exponentiation in the repository (RSA, ElGamal, Schnorr, DH,
// OPRF, Shamir fields, Miller-Rabin).
//
// The classic BigUint path reduces with a full Knuth Algorithm D division
// after every schoolbook multiply. MontgomeryContext instead keeps operands
// in the Montgomery domain (x' = x * R mod n with R = 2^(64*k)) where a
// multiply-and-reduce is one CIOS (coarsely integrated operand scanning)
// pass: k rounds of 64x64->128 multiply-accumulate, no division anywhere.
// See Koç, Acar & Kaliski, "Analyzing and Comparing Montgomery Multiplication
// Algorithms" (1996) for the algorithm family; this is the CIOS variant.
//
// Requirements: the modulus must be odd (R = 2^(64k) and n must be coprime).
// bignum::powMod dispatches here automatically for odd moduli and keeps the
// historical square-and-multiply (powModSimple) for even ones — and for
// differential testing.
#pragma once

#include <cstdint>
#include <vector>

#include "dosn/bignum/biguint.hpp"

namespace dosn::bignum {

class MontgomeryContext {
 public:
  /// A value in the Montgomery domain: little-endian 64-bit limbs, always
  /// exactly words() long and fully reduced (< n), so limb-wise equality is
  /// value equality.
  using Limbs = std::vector<std::uint64_t>;

  /// Throws DosnError unless `modulus` is odd and > 1.
  explicit MontgomeryContext(const BigUint& modulus);

  const BigUint& modulus() const { return modulus_; }
  std::size_t words() const { return n_.size(); }

  /// x * R mod n (x is reduced mod n first, so any x is accepted).
  Limbs toMont(const BigUint& x) const;
  /// The Montgomery representation of 1 (R mod n).
  const Limbs& one() const { return one_; }
  BigUint fromMont(const Limbs& x) const;

  /// CIOS multiply-reduce: a * b * R^{-1} mod n for Montgomery-domain a, b.
  Limbs montMul(const Limbs& a, const Limbs& b) const;

  /// base^exponent mod n via sliding-window recoding (width 4-6 by exponent
  /// size, odd powers only) entirely in the Montgomery domain; equals
  /// powModSimple(base, exponent, modulus()).
  BigUint powMod(const BigUint& base, const BigUint& exponent) const;
  /// As powMod but in-domain at both ends: baseMont is Montgomery-form and so
  /// is the result (Miller-Rabin keeps squaring the result afterwards).
  Limbs powMont(const Limbs& baseMont, const BigUint& exponent) const;

  /// (a * b) mod n through the Montgomery domain; equals mulMod(a, b, n).
  BigUint mulMod(const BigUint& a, const BigUint& b) const;

 private:
  BigUint modulus_;
  Limbs n_;                  // modulus, 64-bit limbs
  Limbs rr_;                 // R^2 mod n (Montgomery form of R)
  Limbs one_;                // R mod n (Montgomery form of 1)
  std::uint64_t nInv_ = 0;   // -n^{-1} mod 2^64
};

/// Precomputed window table for a fixed base g and odd modulus p: pow(e)
/// computes g^e mod p with ~bits/4 Montgomery multiplies and *no squarings*,
/// by storing g^(j * 16^i) for every 4-bit window i and digit j. Repeated
/// g^x with the same (g, p) — DH handshakes, ElGamal encryptions, Schnorr
/// commitments, OPRF blinding — amortizes the table across calls (see
/// pkcrypto::fixedBasePowerTable for the per-(g, p) cache).
class FixedBasePowerTable {
 public:
  /// Covers exponents up to maxExponentBits bits; wider exponents fall back
  /// to the generic Montgomery powMod.
  FixedBasePowerTable(const BigUint& base, const BigUint& modulus,
                      std::size_t maxExponentBits);

  const BigUint& base() const { return base_; }
  const BigUint& modulus() const { return ctx_.modulus(); }
  std::size_t maxExponentBits() const { return windows_ * 4; }

  /// base^exponent mod modulus.
  BigUint pow(const BigUint& exponent) const;

 private:
  MontgomeryContext ctx_;
  BigUint base_;
  std::size_t windows_;
  // table_[i * 15 + (j - 1)] = Mont(base^(j * 16^i)), j in [1, 15].
  std::vector<MontgomeryContext::Limbs> table_;
};

}  // namespace dosn::bignum
