// Montgomery's batch-inversion trick: n modular inverses for the price of
// ONE extended-Euclid invMod plus 3(n-1) modular multiplies. The hot-loop
// consumers are OPRF unblinding (one inversion per tag otherwise), Schnorr
// verification helpers, and Shamir/Lagrange reconstruction (one inversion per
// coefficient otherwise).
//
//   prefix:  p_i = v_1 * v_2 * ... * v_i          (n-1 multiplies)
//   invert:  t   = (p_n)^{-1}                     (one invMod)
//   peel:    v_i^{-1} = t * p_{i-1};  t *= v_i    (2(n-1) multiplies)
//
// Inverses mod m are unique, so the outputs are byte-identical to calling
// invMod element-wise — batching is a pure cost transformation.
#pragma once

#include <optional>
#include <vector>

#include "dosn/bignum/biguint.hpp"
#include "dosn/bignum/montgomery.hpp"

namespace dosn::bignum {

/// Inverts every values[i] mod m. Returns std::nullopt if ANY element is
/// non-invertible (gcd(v_i, m) != 1 — the prefix product then shares that
/// factor); callers needing per-element blame fall back to invMod
/// element-wise. Odd moduli route the multiplies through a Montgomery
/// context automatically.
std::optional<std::vector<BigUint>> batchInvMod(
    const std::vector<BigUint>& values, const BigUint& m);

/// As above with a caller-provided Montgomery context (skips the per-call
/// R^2 setup division when the caller already holds one, e.g. DlogGroup or
/// PrimeField).
std::optional<std::vector<BigUint>> batchInvMod(
    const std::vector<BigUint>& values, const MontgomeryContext& ctx);

}  // namespace dosn::bignum
