#include "dosn/workload/model.hpp"

#include <algorithm>

namespace dosn::workload {

const char* kindName(EventKind kind) {
  switch (kind) {
    case EventKind::kPost: return "post";
    case EventKind::kFetch: return "fetch";
    case EventKind::kFlashPost: return "flash_post";
    case EventKind::kFlashFetch: return "flash_fetch";
    case EventKind::kRevoke: return "revoke";
  }
  return "?";
}

sim::SimTime WorkloadConfig::dayLength() const {
  sim::SimTime total = 0;
  for (const PhaseSpec& phase : phases) total += phase.duration;
  return total;
}

WorkloadConfig WorkloadConfig::dayInLife(std::size_t users, double hourScale) {
  WorkloadConfig config;
  config.users = users;
  const auto hours = [hourScale](double h) {
    return static_cast<sim::SimTime>(h * hourScale * 3600.0 *
                                     static_cast<double>(sim::kSecond));
  };
  // The wave rises from a night trough through a morning ramp to a midday
  // peak and back down; the heavy special events ride the phases where they
  // hurt the most (flash crowds at peak, revocations and faults after it).
  config.phases = {
      {"dawn", hours(2), 0.25, 0, 0, 0.0, 0.0},
      {"morning_ramp", hours(2), 0.60, 0, 0, 0.0, 0.0},
      {"noon_flash", hours(2), 1.00, 2, 0, 0.0, 0.0},
      {"revocation_storm", hours(2), 0.80, 0, 6, 0.0, 0.0},
      {"evening_faultstorm", hours(2), 0.70, 1, 2, 0.20, 0.30},
      {"night", hours(2), 0.15, 0, 0, 0.0, 0.0},
  };
  return config;
}

std::size_t phaseIndexAt(const WorkloadConfig& config, sim::SimTime t) {
  sim::SimTime end = 0;
  for (std::size_t i = 0; i < config.phases.size(); ++i) {
    end += config.phases[i].duration;
    if (t < end) return i;
  }
  return config.phases.empty() ? 0 : config.phases.size() - 1;
}

double diurnalLevel(const WorkloadConfig& config, sim::SimTime t) {
  if (config.phases.empty()) return 1.0;
  return config.phases[phaseIndexAt(config, t)].activityLevel;
}

std::uint64_t scheduleHash(const std::vector<WorkloadEvent>& events,
                           std::size_t maxEvents) {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 0x100000001b3ull;  // FNV-1a 64 prime
    }
  };
  const std::size_t n = std::min(maxEvents, events.size());
  for (std::size_t i = 0; i < n; ++i) {
    const WorkloadEvent& e = events[i];
    mix(e.at);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.actor);
    mix(e.target);
    mix(e.flashId);
  }
  return hash;
}

}  // namespace dosn::workload
