#include "dosn/workload/generator.hpp"

#include <algorithm>
#include <string>

#include "dosn/social/graph_gen.hpp"

namespace dosn::workload {

namespace {

// Sub-seed tweaks: each stream gets its own Rng, so extending one stream
// cannot shift another's draws (Rng runs the raw seed through splitmix64, so
// additive tweaks land in unrelated states).
constexpr std::uint64_t kGraphStream = 0x6752415048ull;
constexpr std::uint64_t kBackgroundStream = 0xd1f75a1ull;
constexpr std::uint64_t kFlashStream = 0xf1a5c0ull;
constexpr std::uint64_t kRevokeStream = 0x5e70feull;

std::uint32_t rankOf(const social::UserId& user) {
  return static_cast<std::uint32_t>(std::stoul(user.substr(1)));
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, std::uint64_t seed)
    : config_(std::move(config)) {
  util::Rng graphRng(seed + kGraphStream);
  graph_ = social::zipfFollower(config_.users, config_.followsPerUser,
                                config_.followExponent, graphRng);
  buildCircles();
  generateBackground(seed + kBackgroundStream);
  generateFlashCrowds(seed + kFlashStream);
  generateRevocations(seed + kRevokeStream);
  // Deterministic total order: time-sorted, generation order breaks ties.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const WorkloadEvent& a, const WorkloadEvent& b) {
                     return a.at < b.at;
                   });
}

void WorkloadGenerator::buildCircles() {
  circles_.resize(config_.users);
  for (std::uint32_t u = 0; u < config_.users; ++u) {
    std::vector<std::uint32_t> circle;
    for (const auto& friendId : graph_.friendsOf(social::syntheticUser(u))) {
      circle.push_back(rankOf(friendId));
    }
    std::sort(circle.begin(), circle.end());
    circles_[u] = std::move(circle);
  }
  survivors_ = circles_;
}

void WorkloadGenerator::generateBackground(std::uint64_t seed) {
  const sim::SimTime day = config_.dayLength();
  const double perUserHour =
      config_.peakPostsPerUserHour + config_.peakFetchesPerUserHour;
  if (day == 0 || perUserHour <= 0 || config_.users == 0) return;
  const double fleetPerTick = static_cast<double>(config_.users) *
                              perUserHour /
                              (3600.0 * static_cast<double>(sim::kSecond));
  const double meanGapTicks = 1.0 / fleetPerTick;
  const double fetchShare = config_.peakFetchesPerUserHour / perUserHour;

  util::Rng rng(seed);
  double t = rng.exponential(meanGapTicks);
  while (t < static_cast<double>(day)) {
    const sim::SimTime at = static_cast<sim::SimTime>(t);
    // Poisson thinning: candidate arrivals run at the peak rate; the diurnal
    // wave keeps lambda(t)/lambda(peak) of them.
    if (rng.uniformReal() < diurnalLevel(config_, at)) {
      const auto actor =
          static_cast<std::uint32_t>(rng.zipf(config_.users,
                                              config_.activityExponent));
      const bool isFetch = rng.uniformReal() < fetchShare;
      if (isFetch) {
        const auto& follows = circles_[actor];
        if (!follows.empty()) {
          const auto target = follows[static_cast<std::size_t>(
              rng.uniform(follows.size()))];
          events_.push_back({at, EventKind::kFetch, actor, target, 0});
        }
      } else {
        events_.push_back({at, EventKind::kPost, actor, 0, 0});
      }
    }
    t += rng.exponential(meanGapTicks);
  }
}

void WorkloadGenerator::generateFlashCrowds(std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint32_t flashId = 0;
  sim::SimTime phaseStart = 0;
  for (const PhaseSpec& phase : config_.phases) {
    for (std::size_t i = 0; phase.duration > 0 && i < phase.flashCrowds; ++i) {
      // Celebrity ranks come from the same Zipf the follower graph used, so
      // the flash usually lands on a high-degree wall; bounded redraw skips
      // the rare rank that ended up friendless.
      std::uint32_t celebrity = 0;
      bool found = false;
      for (int attempt = 0; attempt < 16 && !found; ++attempt) {
        celebrity = static_cast<std::uint32_t>(
            rng.zipf(config_.users, config_.followExponent));
        found = !circles_[celebrity].empty();
      }
      if (!found) continue;
      const sim::SimTime at =
          phaseStart + static_cast<sim::SimTime>(rng.uniform(phase.duration));
      ++flashId;
      events_.push_back({at, EventKind::kFlashPost, celebrity, 0, flashId});
      // Fan out through the whole circle — every member reads the wall,
      // jittered so the crowd arrives as a wave, never before the post.
      for (const std::uint32_t member : circles_[celebrity]) {
        const auto jitter = static_cast<sim::SimTime>(
            rng.exponential(static_cast<double>(config_.flashJitterMean)));
        events_.push_back({at + sim::kMillisecond + jitter,
                           EventKind::kFlashFetch, member, celebrity,
                           flashId});
      }
    }
    phaseStart += phase.duration;
  }
}

void WorkloadGenerator::generateRevocations(std::uint64_t seed) {
  util::Rng rng(seed);
  sim::SimTime phaseStart = 0;
  for (const PhaseSpec& phase : config_.phases) {
    for (std::size_t i = 0; phase.duration > 0 && i < phase.revocations; ++i) {
      // An owner can revoke while they still have at least two members (the
      // schedule never empties a circle, so every wall stays readable).
      std::uint32_t owner = 0;
      bool found = false;
      for (int attempt = 0; attempt < 16 && !found; ++attempt) {
        owner = static_cast<std::uint32_t>(
            rng.zipf(config_.users, config_.followExponent));
        found = survivors_[owner].size() >= 2;
      }
      if (!found) continue;
      auto& pool = survivors_[owner];
      const auto pick = static_cast<std::size_t>(rng.uniform(pool.size()));
      const std::uint32_t member = pool[pick];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      const sim::SimTime at =
          phaseStart + static_cast<sim::SimTime>(rng.uniform(phase.duration));
      events_.push_back({at, EventKind::kRevoke, owner, member, 0});
      revocations_.emplace_back(owner, member);
    }
    phaseStart += phase.duration;
  }
}

}  // namespace dosn::workload
