// Deterministic materialization of a WorkloadConfig: one seed in, one social
// graph and one time-sorted event schedule out (DESIGN.md §3h).
//
// Streams: the generator derives independent sub-seeds from the base seed for
// the graph, the background post/fetch arrivals, the flash crowds and the
// revocation storm, so adding events to one stream cannot shift another
// stream's draws. The schedule is fully materialized up front — benches
// replay it against the live stack; tests assert on it directly.
#pragma once

#include <vector>

#include "dosn/social/graph.hpp"
#include "dosn/util/rng.hpp"
#include "dosn/workload/model.hpp"

namespace dosn::workload {

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, std::uint64_t seed);

  const WorkloadConfig& config() const { return config_; }
  const social::SocialGraph& graph() const { return graph_; }

  /// The full day's schedule, sorted by `at` (generation order breaks ties,
  /// so the order is deterministic).
  const std::vector<WorkloadEvent>& events() const { return events_; }

  /// Wall-circle membership (follower ranks) for each user rank, snapshotted
  /// from the graph at generation time — the "IBBE group" a flash crowd fans
  /// out through and the member pool revocations draw from.
  const std::vector<std::uint32_t>& circleOf(std::uint32_t user) const {
    return circles_[user];
  }

  /// Members still in `user`'s circle after the day's revocations (the
  /// schedule never revokes the same member twice or empties a circle).
  const std::vector<std::uint32_t>& survivorsOf(std::uint32_t user) const {
    return survivors_[user];
  }

  /// (owner, revoked member) pairs in schedule order.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& revocations()
      const {
    return revocations_;
  }

  /// scheduleHash over this generator's first `maxEvents` events.
  std::uint64_t hash(std::size_t maxEvents = 256) const {
    return scheduleHash(events_, maxEvents);
  }

 private:
  void buildCircles();
  void generateBackground(std::uint64_t seed);
  void generateFlashCrowds(std::uint64_t seed);
  void generateRevocations(std::uint64_t seed);

  WorkloadConfig config_;
  social::SocialGraph graph_;
  std::vector<std::vector<std::uint32_t>> circles_;
  std::vector<std::vector<std::uint32_t>> survivors_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> revocations_;
  std::vector<WorkloadEvent> events_;
};

}  // namespace dosn::workload
