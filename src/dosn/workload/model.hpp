// The production-load model behind bench_dayinlife (DESIGN.md §3h): a
// declarative description of one simulated "day" of social-network traffic —
// named phases tiling the sim clock, a diurnal activity wave modulating
// per-user post/fetch rates, flash crowds (a celebrity post fanned out to the
// whole follower circle), DECENT-style ACL revocation storms, and per-phase
// churn/fault-storm knobs consumed by the bench.
//
// The model is pure data plus pure functions of it; every random decision is
// made by WorkloadGenerator (generator.hpp) from a single seed, so a
// (config, seed) pair maps to exactly one event schedule. scheduleHash pins
// that contract byte-for-byte in test_workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dosn/sim/simulator.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::workload {

/// What one scheduled event does when the bench applies it.
enum class EventKind : std::uint8_t {
  kPost = 0,       // actor publishes to their wall circle
  kFetch = 1,      // actor fetches target's timeline
  kFlashPost = 2,  // celebrity post that opens a flash crowd
  kFlashFetch = 3, // a circle member fetching the flash post
  kRevoke = 4,     // actor revokes target from their wall circle
};

const char* kindName(EventKind kind);

/// One scheduled action. Users are identified by their rank index into the
/// Zipf-follower graph (social::syntheticUser(actor) names them); `target` is
/// meaningful for kFetch/kFlashFetch (the author being read) and kRevoke (the
/// member being revoked). `flashId` groups a kFlashPost with the kFlashFetch
/// fan-out it triggered (0 for non-flash events).
struct WorkloadEvent {
  sim::SimTime at = 0;
  EventKind kind = EventKind::kPost;
  std::uint32_t actor = 0;
  std::uint32_t target = 0;
  std::uint32_t flashId = 0;
};

/// One contiguous window of the simulated day. Phases tile [0, dayLength):
/// phase i starts where phase i-1 ended. `activityLevel` is the diurnal wave
/// sampled for this window — the fraction of the peak post/fetch rates that
/// survives Poisson thinning. Flash crowds and revocations are scheduled
/// uniformly within their phase; churn/fault knobs are applied by the bench
/// for the phase's duration.
struct PhaseSpec {
  std::string name;
  sim::SimTime duration = 0;
  double activityLevel = 1.0;    // in (0, 1]: lambda(phase) / lambda(peak)
  std::size_t flashCrowds = 0;   // celebrity fan-out events in this phase
  std::size_t revocations = 0;   // ACL revocations in this phase
  double dropProbability = 0.0;  // fault storm: global drop rate while active
  double offlineFraction = 0.0;  // substrate churn target while active
};

/// The full day-in-the-life parameterization. Rates are per user per
/// simulated hour at the diurnal peak; the generator thins them by each
/// phase's activityLevel.
struct WorkloadConfig {
  // Social graph (social::zipfFollower).
  std::size_t users = 24;
  std::size_t followsPerUser = 3;
  double followExponent = 1.0;   // Zipf exponent over follower popularity

  // Activity distribution: who acts is Zipf(activityExponent) over ranks, so
  // popular users are also the busiest (the microblog workload assumption).
  double activityExponent = 0.8;

  // Peak (activityLevel == 1.0) rates, per user per simulated hour.
  double peakPostsPerUserHour = 2.0;
  double peakFetchesPerUserHour = 12.0;

  /// Mean jitter between a flash post and each follower's fetch of it.
  sim::SimTime flashJitterMean = 2 * sim::kSecond;

  std::vector<PhaseSpec> phases;

  /// Sum of phase durations — the simulated day.
  sim::SimTime dayLength() const;

  /// The canonical six-phase day bench_dayinlife runs: dawn, morning-ramp,
  /// noon-flash (flash crowds at full activity), revocation-storm,
  /// evening-faultstorm (drop storm + deep churn), night. `hourScale`
  /// compresses each "hour" of simulated day onto the sim clock (1.0 = one
  /// phase hour lasts one sim hour); benches shrink it so a full day fits in
  /// a CI run without changing the event *mix*.
  static WorkloadConfig dayInLife(std::size_t users, double hourScale = 1.0);
};

/// The diurnal wave: piecewise-constant per phase. Returns the activityLevel
/// of the phase containing `t` (clamped to the last phase for t past the end
/// of the day). Pure function of (config, t).
double diurnalLevel(const WorkloadConfig& config, sim::SimTime t);

/// Index of the phase containing `t` (clamped to the last phase).
std::size_t phaseIndexAt(const WorkloadConfig& config, sim::SimTime t);

/// FNV-1a 64 over the first `maxEvents` events' (at, kind, actor, target,
/// flashId) fields — the schedule-determinism pin: a fixed (config, seed)
/// must reproduce this hash on every platform and build.
std::uint64_t scheduleHash(const std::vector<WorkloadEvent>& events,
                           std::size_t maxEvents);

}  // namespace dosn::workload
