#include "dosn/policy/field.hpp"

#include "dosn/bignum/batch.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/util/error.hpp"

namespace dosn::policy {

PrimeField::PrimeField(BigUint modulus) : p_(std::move(modulus)) {
  if (p_ < BigUint(2)) throw util::DosnError("PrimeField: modulus too small");
  if (p_.isOdd()) {
    mont_ = std::make_shared<const bignum::MontgomeryContext>(p_);
  }
}

const PrimeField& PrimeField::standard() {
  static const PrimeField field = [] {
    // 2^255 - 19.
    const BigUint p = (BigUint(1) << 255) - BigUint(19);
    return PrimeField(p);
  }();
  return field;
}

BigUint PrimeField::add(const BigUint& a, const BigUint& b) const {
  return bignum::addMod(a, b, p_);
}

BigUint PrimeField::sub(const BigUint& a, const BigUint& b) const {
  return bignum::subMod(a, b, p_);
}

BigUint PrimeField::mul(const BigUint& a, const BigUint& b) const {
  // Same value as the historical multiply-then-divide path, but the cached
  // context replaces the Knuth division with CIOS passes.
  if (mont_) return mont_->mulMod(a, b);
  return bignum::mulMod(a, b, p_);
}

BigUint PrimeField::neg(const BigUint& a) const {
  const BigUint r = reduce(a);
  if (r.isZero()) return r;
  return p_ - r;
}

BigUint PrimeField::inv(const BigUint& a) const {
  const auto result = bignum::invMod(a, p_);
  if (!result) throw util::DosnError("PrimeField::inv: zero or non-unit");
  return *result;
}

std::vector<BigUint> PrimeField::invBatch(
    const std::vector<BigUint>& values) const {
  auto result = mont_ ? bignum::batchInvMod(values, *mont_)
                      : bignum::batchInvMod(values, p_);
  if (!result) throw util::DosnError("PrimeField::inv: zero or non-unit");
  return std::move(*result);
}

BigUint PrimeField::pow(const BigUint& a, const BigUint& e) const {
  if (mont_) return mont_->powMod(a, e);
  return bignum::powMod(a, e, p_);
}

BigUint PrimeField::reduce(const BigUint& a) const { return a % p_; }

BigUint PrimeField::random(util::Rng& rng) const {
  return bignum::randomBelow(p_, rng);
}

util::Bytes PrimeField::encode(const BigUint& a) const {
  return reduce(a).toBytesPadded(encodedSize());
}

}  // namespace dosn::policy
