// Prime-field arithmetic for secret sharing. The default field modulus is the
// 255-bit prime 2^255 - 19 (big enough to embed 32-byte secrets minus a few
// bits; secrets are reduced mod p).
#pragma once

#include <memory>
#include <vector>

#include "dosn/bignum/biguint.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::policy {

using bignum::BigUint;

class PrimeField {
 public:
  explicit PrimeField(BigUint modulus);

  /// The library default: GF(2^255 - 19).
  static const PrimeField& standard();

  const BigUint& modulus() const { return p_; }

  BigUint add(const BigUint& a, const BigUint& b) const;
  BigUint sub(const BigUint& a, const BigUint& b) const;
  BigUint mul(const BigUint& a, const BigUint& b) const;
  BigUint neg(const BigUint& a) const;
  /// Throws if a == 0.
  BigUint inv(const BigUint& a) const;
  /// Inverts every element for one extended-Euclid call (Montgomery's batch
  /// trick, bignum/batch.hpp); element i equals inv(values[i]) byte-for-
  /// byte. Throws like inv if any element is zero or a non-unit.
  std::vector<BigUint> invBatch(const std::vector<BigUint>& values) const;
  BigUint pow(const BigUint& a, const BigUint& e) const;
  BigUint reduce(const BigUint& a) const;
  BigUint random(util::Rng& rng) const;

  /// Fixed-width encoding for hashing/serialization.
  util::Bytes encode(const BigUint& a) const;
  std::size_t encodedSize() const { return (p_.bitLength() + 7) / 8; }

 private:
  BigUint p_;
  // Built once per field for odd moduli so pow() skips the per-call R^2
  // division; shared_ptr keeps PrimeField cheaply copyable.
  std::shared_ptr<const bignum::MontgomeryContext> mont_;
};

}  // namespace dosn::policy
