// Shamir secret sharing over a prime field — the share-distribution machinery
// behind the ABE constructions (threshold gates in access trees).
#pragma once

#include <vector>

#include "dosn/policy/field.hpp"

namespace dosn::policy {

struct Share {
  BigUint x;  // evaluation point (nonzero)
  BigUint y;  // polynomial value
};

/// Splits `secret` into n shares with threshold k (any k reconstruct).
/// Evaluation points are 1..n. Requires 1 <= k <= n and n < field modulus.
std::vector<Share> shamirShare(const PrimeField& field, const BigUint& secret,
                               std::size_t k, std::size_t n, util::Rng& rng);

/// Reconstructs the secret (polynomial at 0) from >= k distinct shares.
/// With fewer than k shares the result is garbage, not an error — callers
/// check satisfiability first.
BigUint shamirReconstruct(const PrimeField& field,
                          const std::vector<Share>& shares);

/// Lagrange coefficient for interpolation at 0: prod_{j != i} x_j/(x_j - x_i).
BigUint lagrangeCoefficientAtZero(const PrimeField& field,
                                  const std::vector<Share>& shares,
                                  std::size_t i);

}  // namespace dosn::policy
