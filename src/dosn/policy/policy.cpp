#include "dosn/policy/policy.hpp"

#include <cctype>

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::policy {

std::unique_ptr<PolicyNode> PolicyNode::clone() const {
  auto node = std::make_unique<PolicyNode>();
  node->kind = kind;
  node->attribute = attribute;
  node->threshold = threshold;
  node->children.reserve(children.size());
  for (const auto& child : children) node->children.push_back(child->clone());
  return node;
}

Policy::Policy(const Policy& other)
    : root_(other.root_ ? other.root_->clone() : nullptr) {}

Policy& Policy::operator=(const Policy& other) {
  if (this != &other) root_ = other.root_ ? other.root_->clone() : nullptr;
  return *this;
}

namespace {

// Recursive-descent parser. Grammar:
//   expr      := orExpr
//   orExpr    := andExpr ( "OR" andExpr )*
//   andExpr   := primary ( "AND" primary )*
//   primary   := attribute | "(" expr ")" | INT "of" "(" expr ("," expr)* ")"
//   attribute := [A-Za-z_][A-Za-z0-9_:.-]*
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<PolicyNode> run() {
    auto node = parseExpr();
    if (!node) return nullptr;
    skipSpace();
    if (pos_ != text_.size()) return nullptr;  // trailing garbage
    return node;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool isWordChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '.' || c == '-';
  }

  std::string peekWord() {
    skipSpace();
    std::size_t end = pos_;
    while (end < text_.size() && isWordChar(text_[end])) ++end;
    return std::string(text_.substr(pos_, end - pos_));
  }

  void consumeWord(const std::string& word) { pos_ += word.size(); }

  bool consumeChar(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
  }

  std::unique_ptr<PolicyNode> makeGate(std::size_t k,
                                       std::vector<std::unique_ptr<PolicyNode>> kids) {
    if (kids.size() == 1 && k == 1) return std::move(kids.front());
    auto node = std::make_unique<PolicyNode>();
    node->kind = PolicyNode::Kind::kThreshold;
    node->threshold = k;
    node->children = std::move(kids);
    return node;
  }

  std::unique_ptr<PolicyNode> parseExpr() { return parseOr(); }

  std::unique_ptr<PolicyNode> parseOr() {
    std::vector<std::unique_ptr<PolicyNode>> kids;
    auto first = parseAnd();
    if (!first) return nullptr;
    kids.push_back(std::move(first));
    while (true) {
      const std::string word = peekWord();
      if (lower(word) != "or") break;
      consumeWord(word);
      auto next = parseAnd();
      if (!next) return nullptr;
      kids.push_back(std::move(next));
    }
    return makeGate(1, std::move(kids));
  }

  std::unique_ptr<PolicyNode> parseAnd() {
    std::vector<std::unique_ptr<PolicyNode>> kids;
    auto first = parsePrimary();
    if (!first) return nullptr;
    kids.push_back(std::move(first));
    while (true) {
      const std::string word = peekWord();
      if (lower(word) != "and") break;
      consumeWord(word);
      auto next = parsePrimary();
      if (!next) return nullptr;
      kids.push_back(std::move(next));
    }
    const std::size_t k = kids.size();  // before the move (evaluation order!)
    return makeGate(k, std::move(kids));
  }

  std::unique_ptr<PolicyNode> parsePrimary() {
    skipSpace();
    if (consumeChar('(')) {
      auto inner = parseExpr();
      if (!inner || !consumeChar(')')) return nullptr;
      return inner;
    }
    const std::string word = peekWord();
    if (word.empty()) return nullptr;
    // Threshold form: INT of ( ... , ... )
    if (std::isdigit(static_cast<unsigned char>(word[0]))) {
      for (char c : word) {
        if (!std::isdigit(static_cast<unsigned char>(c))) return nullptr;
      }
      consumeWord(word);
      const std::string ofWord = peekWord();
      if (lower(ofWord) != "of") return nullptr;
      consumeWord(ofWord);
      if (!consumeChar('(')) return nullptr;
      std::vector<std::unique_ptr<PolicyNode>> kids;
      while (true) {
        auto child = parseExpr();
        if (!child) return nullptr;
        kids.push_back(std::move(child));
        if (consumeChar(',')) continue;
        if (consumeChar(')')) break;
        return nullptr;
      }
      const std::size_t k = std::stoul(word);
      if (k == 0 || k > kids.size()) return nullptr;
      auto node = std::make_unique<PolicyNode>();
      node->kind = PolicyNode::Kind::kThreshold;
      node->threshold = k;
      node->children = std::move(kids);
      return node;
    }
    // Reserved words can't be attributes.
    const std::string lw = lower(word);
    if (lw == "and" || lw == "or" || lw == "of") return nullptr;
    consumeWord(word);
    auto node = std::make_unique<PolicyNode>();
    node->kind = PolicyNode::Kind::kAttribute;
    node->attribute = word;
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool nodeSatisfied(const PolicyNode& node,
                   const std::set<std::string>& attributes) {
  if (node.kind == PolicyNode::Kind::kAttribute) {
    return attributes.count(node.attribute) > 0;
  }
  std::size_t satisfied = 0;
  for (const auto& child : node.children) {
    if (nodeSatisfied(*child, attributes)) ++satisfied;
    if (satisfied >= node.threshold) return true;
  }
  return false;
}

void collectLeaves(const PolicyNode& node,
                   std::vector<const PolicyNode*>& out) {
  if (node.kind == PolicyNode::Kind::kAttribute) {
    out.push_back(&node);
    return;
  }
  for (const auto& child : node.children) collectLeaves(*child, out);
}

std::string nodeToString(const PolicyNode& node) {
  if (node.kind == PolicyNode::Kind::kAttribute) return node.attribute;
  std::string out = std::to_string(node.threshold) + " of (";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ", ";
    out += nodeToString(*node.children[i]);
  }
  out += ")";
  return out;
}

void serializeNode(const PolicyNode& node, util::Writer& w) {
  if (node.kind == PolicyNode::Kind::kAttribute) {
    w.u8(0);
    w.str(node.attribute);
    return;
  }
  w.u8(1);
  w.u32(static_cast<std::uint32_t>(node.threshold));
  w.u32(static_cast<std::uint32_t>(node.children.size()));
  for (const auto& child : node.children) serializeNode(*child, w);
}

std::unique_ptr<PolicyNode> deserializeNode(util::Reader& r, int depth) {
  if (depth > 64) throw util::CodecError("policy: nesting too deep");
  auto node = std::make_unique<PolicyNode>();
  const std::uint8_t tag = r.u8();
  if (tag == 0) {
    node->kind = PolicyNode::Kind::kAttribute;
    node->attribute = r.str();
    if (node->attribute.empty()) throw util::CodecError("policy: empty attribute");
    return node;
  }
  if (tag != 1) throw util::CodecError("policy: bad node tag");
  node->kind = PolicyNode::Kind::kThreshold;
  node->threshold = r.u32();
  const std::uint32_t count = r.u32();
  if (count == 0 || count > 4096 || node->threshold == 0 ||
      node->threshold > count) {
    throw util::CodecError("policy: bad threshold gate");
  }
  node->children.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    node->children.push_back(deserializeNode(r, depth + 1));
  }
  return node;
}

}  // namespace

std::optional<Policy> Policy::parse(std::string_view text) {
  auto root = Parser(text).run();
  if (!root) return std::nullopt;
  return Policy(std::move(root));
}

Policy Policy::attribute(std::string name) {
  auto node = std::make_unique<PolicyNode>();
  node->kind = PolicyNode::Kind::kAttribute;
  node->attribute = std::move(name);
  return Policy(std::move(node));
}

bool Policy::satisfied(const std::set<std::string>& attributes) const {
  if (!root_) return false;
  return nodeSatisfied(*root_, attributes);
}

std::vector<const PolicyNode*> Policy::leaves() const {
  std::vector<const PolicyNode*> out;
  if (root_) collectLeaves(*root_, out);
  return out;
}

std::set<std::string> Policy::attributes() const {
  std::set<std::string> out;
  for (const PolicyNode* leaf : leaves()) out.insert(leaf->attribute);
  return out;
}

std::string Policy::toString() const {
  if (!root_) return "";
  return nodeToString(*root_);
}

namespace {

void renameLeaves(PolicyNode& node,
                  const std::function<std::string(const std::string&)>& fn) {
  if (node.kind == PolicyNode::Kind::kAttribute) {
    node.attribute = fn(node.attribute);
    return;
  }
  for (auto& child : node.children) renameLeaves(*child, fn);
}

}  // namespace

Policy Policy::mapAttributes(
    const std::function<std::string(const std::string&)>& fn) const {
  Policy copy(*this);
  if (copy.root_) renameLeaves(*copy.root_, fn);
  return copy;
}

util::Bytes Policy::serialize() const {
  util::Writer w;
  w.boolean(root_ != nullptr);
  if (root_) serializeNode(*root_, w);
  return w.take();
}

std::optional<Policy> Policy::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    if (!r.boolean()) {
      r.expectEnd();
      return Policy{};
    }
    auto root = deserializeNode(r, 0);
    r.expectEnd();
    return Policy(std::move(root));
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace dosn::policy
