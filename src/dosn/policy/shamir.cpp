#include "dosn/policy/shamir.hpp"

#include "dosn/util/error.hpp"

namespace dosn::policy {

std::vector<Share> shamirShare(const PrimeField& field, const BigUint& secret,
                               std::size_t k, std::size_t n, util::Rng& rng) {
  if (k == 0 || k > n) throw util::DosnError("shamirShare: need 1 <= k <= n");
  if (BigUint(n) >= field.modulus()) {
    throw util::DosnError("shamirShare: too many shares for field");
  }
  // Random polynomial of degree k-1 with constant term = secret.
  std::vector<BigUint> coeffs;
  coeffs.reserve(k);
  coeffs.push_back(field.reduce(secret));
  for (std::size_t i = 1; i < k; ++i) coeffs.push_back(field.random(rng));

  std::vector<Share> shares;
  shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const BigUint x(i);
    // Horner evaluation.
    BigUint y{};
    for (std::size_t c = coeffs.size(); c-- > 0;) {
      y = field.add(field.mul(y, x), coeffs[c]);
    }
    shares.push_back(Share{x, y});
  }
  return shares;
}

BigUint lagrangeCoefficientAtZero(const PrimeField& field,
                                  const std::vector<Share>& shares,
                                  std::size_t i) {
  BigUint num(1);
  BigUint den(1);
  for (std::size_t j = 0; j < shares.size(); ++j) {
    if (j == i) continue;
    num = field.mul(num, shares[j].x);
    den = field.mul(den, field.sub(shares[j].x, shares[i].x));
  }
  return field.mul(num, field.inv(den));
}

BigUint shamirReconstruct(const PrimeField& field,
                          const std::vector<Share>& shares) {
  if (shares.empty()) throw util::DosnError("shamirReconstruct: no shares");
  BigUint secret{};
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const BigUint li = lagrangeCoefficientAtZero(field, shares, i);
    secret = field.add(secret, field.mul(shares[i].y, li));
  }
  return secret;
}

}  // namespace dosn::policy
