#include "dosn/policy/shamir.hpp"

#include "dosn/util/error.hpp"

namespace dosn::policy {

std::vector<Share> shamirShare(const PrimeField& field, const BigUint& secret,
                               std::size_t k, std::size_t n, util::Rng& rng) {
  if (k == 0 || k > n) throw util::DosnError("shamirShare: need 1 <= k <= n");
  if (BigUint(n) >= field.modulus()) {
    throw util::DosnError("shamirShare: too many shares for field");
  }
  // Random polynomial of degree k-1 with constant term = secret.
  std::vector<BigUint> coeffs;
  coeffs.reserve(k);
  coeffs.push_back(field.reduce(secret));
  for (std::size_t i = 1; i < k; ++i) coeffs.push_back(field.random(rng));

  std::vector<Share> shares;
  shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const BigUint x(i);
    // Horner evaluation.
    BigUint y{};
    for (std::size_t c = coeffs.size(); c-- > 0;) {
      y = field.add(field.mul(y, x), coeffs[c]);
    }
    shares.push_back(Share{x, y});
  }
  return shares;
}

BigUint lagrangeCoefficientAtZero(const PrimeField& field,
                                  const std::vector<Share>& shares,
                                  std::size_t i) {
  BigUint num(1);
  BigUint den(1);
  for (std::size_t j = 0; j < shares.size(); ++j) {
    if (j == i) continue;
    num = field.mul(num, shares[j].x);
    den = field.mul(den, field.sub(shares[j].x, shares[i].x));
  }
  return field.mul(num, field.inv(den));
}

BigUint shamirReconstruct(const PrimeField& field,
                          const std::vector<Share>& shares) {
  if (shares.empty()) throw util::DosnError("shamirReconstruct: no shares");
  // The per-coefficient path (lagrangeCoefficientAtZero, retained as the
  // differential reference) pays one extended-Euclid inversion per share;
  // here all denominators invert in ONE invBatch call. Numerators,
  // denominators and the summation keep the reference path's exact
  // multiplication order, and inverses are unique, so the result is
  // byte-identical share set by share set.
  const std::size_t n = shares.size();
  std::vector<BigUint> nums(n), dens(n);
  for (std::size_t i = 0; i < n; ++i) {
    BigUint num(1);
    BigUint den(1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      num = field.mul(num, shares[j].x);
      den = field.mul(den, field.sub(shares[j].x, shares[i].x));
    }
    nums[i] = std::move(num);
    dens[i] = std::move(den);
  }
  const std::vector<BigUint> invs = field.invBatch(dens);
  BigUint secret{};
  for (std::size_t i = 0; i < n; ++i) {
    const BigUint li = field.mul(nums[i], invs[i]);
    secret = field.add(secret, field.mul(shares[i].y, li));
  }
  return secret;
}

}  // namespace dosn::policy
