// Access-structure language for attribute-based encryption (paper §III-D):
// monotone boolean formulas over attributes with AND / OR / k-of-n threshold
// gates, e.g.
//
//   (relative AND doctor) OR painter
//   2 of (family, colleague, neighbor)
//
// AND is an n-of-n gate, OR a 1-of-n gate. The tree drives Shamir share
// distribution during encryption and Lagrange reconstruction on decryption.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/util/bytes.hpp"

namespace dosn::policy {

struct PolicyNode {
  enum class Kind { kAttribute, kThreshold };

  Kind kind = Kind::kAttribute;
  std::string attribute;       // leaves only
  std::size_t threshold = 0;   // gates only: k of children.size()
  std::vector<std::unique_ptr<PolicyNode>> children;

  std::unique_ptr<PolicyNode> clone() const;
};

class Policy {
 public:
  Policy() = default;
  Policy(const Policy& other);
  Policy& operator=(const Policy& other);
  Policy(Policy&&) noexcept = default;
  Policy& operator=(Policy&&) noexcept = default;

  /// Parses the policy language; std::nullopt on syntax errors.
  static std::optional<Policy> parse(std::string_view text);

  /// Single-attribute policy.
  static Policy attribute(std::string name);

  bool empty() const { return root_ == nullptr; }
  const PolicyNode* root() const { return root_.get(); }

  /// True if the attribute set satisfies the formula.
  bool satisfied(const std::set<std::string>& attributes) const;

  /// All leaf nodes in DFS order (the order shares are assigned in).
  std::vector<const PolicyNode*> leaves() const;

  /// All distinct attribute names referenced.
  std::set<std::string> attributes() const;

  /// Canonical text form (round-trips through parse()).
  std::string toString() const;

  /// Structure-preserving attribute rename (e.g. epoch-qualifying names).
  Policy mapAttributes(
      const std::function<std::string(const std::string&)>& fn) const;

  /// Compact binary form for embedding in ciphertexts.
  util::Bytes serialize() const;
  static std::optional<Policy> deserialize(util::BytesView data);

 private:
  explicit Policy(std::unique_ptr<PolicyNode> root) : root_(std::move(root)) {}

  std::unique_ptr<PolicyNode> root_;
};

}  // namespace dosn::policy
