// Renders the paper's Table I ("Classification of security aspects and
// solutions in OSNs") from the live scheme registry, plus an extended
// inventory with implementation pointers.
#pragma once

#include <string>

namespace dosn::core {

/// The two-column table exactly as the paper presents it.
std::string renderTable1();

/// Table I extended with the implementing module and detail per row.
std::string renderImplementationInventory();

}  // namespace dosn::core
