#include "dosn/core/node.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::core {

DosnNode::DosnNode(const pkcrypto::DlogGroup& group, UserId user,
                   social::IdentityRegistry& registry, AccessController& acl,
                   util::Rng& rng)
    : group_(group),
      registry_(registry),
      acl_(acl),
      keyring_(social::createKeyring(group, std::move(user), rng)),
      timeline_(group, keyring_) {
  registry_.registerIdentity(social::publicIdentity(keyring_));
}

std::string DosnNode::circleId(const std::string& circle) const {
  return keyring_.user + "/" + circle;
}

void DosnNode::createCircle(const std::string& circle) {
  acl_.createGroup(circleId(circle));
  // The owner always reads their own circles.
  acl_.addMember(circleId(circle), keyring_.user);
}

void DosnNode::addToCircle(const std::string& circle, const UserId& member) {
  acl_.addMember(circleId(circle), member);
}

privacy::RevocationReport DosnNode::removeFromCircle(const std::string& circle,
                                                     const UserId& member) {
  if (member == keyring_.user) {
    throw util::DosnError("DosnNode: cannot revoke the circle owner");
  }
  return acl_.removeMember(circleId(circle), member);
}

namespace {

// Timeline payload: envelope metadata binding the chain entry to the
// published ciphertext.
util::Bytes timelinePayload(const Envelope& envelope) {
  util::Writer w;
  w.str(envelope.scheme);
  w.str(envelope.group);
  w.u64(envelope.serial);
  w.bytes(crypto::sha256Bytes(envelope.blob));
  return w.take();
}

}  // namespace

const PublishedItem& DosnNode::publish(const std::string& circle,
                                       const std::string& text,
                                       social::Timestamp now, util::Rng& rng) {
  PublishedItem item;
  item.post.author = keyring_.user;
  item.post.id = nextPostId_++;
  item.post.created = now;
  item.post.text = text;
  item.envelope = acl_.encrypt(circleId(circle), item.post.serialize(), rng);
  timeline_.append(timelinePayload(item.envelope), rng);
  item.timelineIndex = timeline_.size() - 1;
  wall_.push_back(std::move(item));
  return wall_.back();
}

std::optional<social::Post> DosnNode::read(const DosnNode& author,
                                           std::size_t index) const {
  if (index >= author.wall_.size()) return std::nullopt;
  if (!verifyTimelineOf(author)) return std::nullopt;
  const PublishedItem& item = author.wall_[index];
  const auto plain = acl_.decrypt(keyring_.user, item.envelope);
  if (!plain) return std::nullopt;
  return social::Post::deserialize(*plain);
}

bool DosnNode::verifyTimelineOf(const DosnNode& author) const {
  const auto identity = registry_.lookup(author.user());
  if (!identity) return false;
  return integrity::verifyChain(group_, identity->signingKey,
                                author.timeline_.entries());
}

}  // namespace dosn::core
