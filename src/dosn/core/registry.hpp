// The scheme registry: every security aspect/solution the survey classifies,
// mapped to the module in this repository that implements it. Table I of the
// paper is regenerated from this data (see table1.hpp / bench_table1).
#pragma once

#include <string>
#include <vector>

namespace dosn::core {

enum class Category {
  kDataPrivacy,
  kDataIntegrity,
  kSecureSocialSearch,
};

std::string categoryName(Category category);

struct SchemeInfo {
  Category category;
  std::string aspect;   // the Table I row label
  std::string module;   // implementing module/path in this repo
  std::string detail;   // one-line description of the implementation
};

/// All implemented aspects/solutions, in Table I order.
const std::vector<SchemeInfo>& schemeRegistry();

}  // namespace dosn::core
