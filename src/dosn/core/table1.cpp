#include "dosn/core/table1.hpp"

#include <sstream>

#include "dosn/core/registry.hpp"

namespace dosn::core {

namespace {

std::string padded(const std::string& text, std::size_t width) {
  std::string out = text;
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace

std::string renderTable1() {
  const auto& registry = schemeRegistry();
  std::size_t categoryWidth = 0;
  std::size_t aspectWidth = 0;
  for (const SchemeInfo& info : registry) {
    categoryWidth = std::max(categoryWidth, categoryName(info.category).size());
    aspectWidth = std::max(aspectWidth, info.aspect.size());
  }

  std::ostringstream out;
  const std::string separator =
      "+" + std::string(categoryWidth + 2, '-') + "+" +
      std::string(aspectWidth + 2, '-') + "+\n";
  out << separator;
  out << "| " << padded("Category", categoryWidth) << " | "
      << padded("Security aspects/solutions", aspectWidth) << " |\n";
  out << separator;
  Category last = Category::kSecureSocialSearch;
  bool first = true;
  for (const SchemeInfo& info : registry) {
    const bool newCategory = first || info.category != last;
    if (newCategory && !first) out << separator;
    out << "| "
        << padded(newCategory ? categoryName(info.category) : "", categoryWidth)
        << " | " << padded(info.aspect, aspectWidth) << " |\n";
    last = info.category;
    first = false;
  }
  out << separator;
  out << "TABLE I: Classification of security aspects and solutions in OSNs\n";
  return out.str();
}

std::string renderImplementationInventory() {
  std::ostringstream out;
  out << renderTable1() << "\n";
  out << "Implementation inventory:\n";
  for (const SchemeInfo& info : schemeRegistry()) {
    out << "  [" << categoryName(info.category) << "] " << info.aspect << "\n";
    out << "      module: " << info.module << "\n";
    out << "      impl:   " << info.detail << "\n";
  }
  return out.str();
}

}  // namespace dosn::core
