#include "dosn/core/registry.hpp"

#include "dosn/util/error.hpp"

namespace dosn::core {

std::string categoryName(Category category) {
  switch (category) {
    case Category::kDataPrivacy: return "Data privacy";
    case Category::kDataIntegrity: return "Data integrity";
    case Category::kSecureSocialSearch: return "Secure Social Search";
  }
  throw util::DosnError("categoryName: bad category");
}

const std::vector<SchemeInfo>& schemeRegistry() {
  static const std::vector<SchemeInfo> registry = {
      // --- Data privacy (paper §III) ---
      {Category::kDataPrivacy, "Information substitution",
       "dosn/privacy/substitution",
       "VPSN fake profiles + NOYB atom dictionary rotation"},
      {Category::kDataPrivacy, "Symmetric key encryption",
       "dosn/privacy/symmetric_acl",
       "per-group ChaCha20-Poly1305 key; revoke = re-key + re-encrypt"},
      {Category::kDataPrivacy, "Public key encryption",
       "dosn/privacy/publickey_acl",
       "per-member ElGamal (Flybynight/PeerSoN style)"},
      {Category::kDataPrivacy, "Attribute based encryption",
       "dosn/abe + dosn/privacy/abe_acl",
       "CP-ABE & KP-ABE over Shamir policy trees (Persona/Cachet style)"},
      {Category::kDataPrivacy, "Identity based broadcast encryption",
       "dosn/ibbe + dosn/privacy/ibbe_acl",
       "PKG-extracted identity keys; O(1) recipient removal"},
      {Category::kDataPrivacy, "Hybrid encryption",
       "dosn/privacy/hybrid_acl + dosn/privacy/pad",
       "symmetric payload + pluggable pk/ABE/IBBE key wrap; PAD ACLs"},
      // --- Data integrity (paper §IV) ---
      {Category::kDataIntegrity, "Integrity of data owner and data content",
       "dosn/integrity/signed_post",
       "hash-then-sign Schnorr signatures, out-of-band key registry"},
      {Category::kDataIntegrity, "Historical integrity",
       "dosn/integrity/hash_chain + entanglement + history_tree + "
       "fork_consistency",
       "hash-chained timelines, cross-timeline entanglement, signed history "
       "trees with fork detection"},
      {Category::kDataIntegrity, "Integrity of data relations",
       "dosn/integrity/relation",
       "per-post embedded comment keys (Cachet style)"},
      // --- Secure social search (paper §V) ---
      {Category::kSecureSocialSearch, "Content privacy",
       "dosn/search/hummingbird + dosn/pkcrypto/blind_rsa",
       "blind-signature keyword subscription; index-matched encrypted tweets"},
      {Category::kSecureSocialSearch, "Privacy of searcher",
       "dosn/search/proxy_alias + friend_rings + zkp_access",
       "proxy aliases, Safebook matryoshka rings, Schnorr ZKP pseudonyms"},
      {Category::kSecureSocialSearch, "Privacy of searched data owner",
       "dosn/search/resource_handler",
       "handler indirection with owner-gated content release"},
      {Category::kSecureSocialSearch, "Trusted search result",
       "dosn/search/trust_rank",
       "max-product chain trust blended with popularity"},
  };
  return registry;
}

}  // namespace dosn::core
