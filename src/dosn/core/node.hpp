// DosnNode: the user-facing facade tying the stack together. A node owns a
// keyring, registers its identity out-of-band, keeps a hash-chained timeline
// of everything it publishes, and encrypts posts to circles through a
// pluggable AccessController — i.e. one "user client" of the DOSN.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dosn/integrity/hash_chain.hpp"
#include "dosn/privacy/access_controller.hpp"
#include "dosn/social/content.hpp"

namespace dosn::core {

using privacy::AccessController;
using privacy::Envelope;
using social::UserId;

/// One published wall item: the cleartext post (author-side), the envelope
/// replicas store, and the timeline entry chaining it.
struct PublishedItem {
  social::Post post;
  Envelope envelope;
  std::size_t timelineIndex = 0;
};

class DosnNode {
 public:
  /// Creates the node's keyring and registers it with the shared identity
  /// registry (the out-of-band key exchange of §IV-A).
  DosnNode(const pkcrypto::DlogGroup& group, UserId user,
           social::IdentityRegistry& registry, AccessController& acl,
           util::Rng& rng);

  const UserId& user() const { return keyring_.user; }
  const social::Keyring& keyring() const { return keyring_; }

  /// Circle management. Circle names are namespaced per user
  /// ("alice/friends") so controllers can be shared across nodes.
  std::string circleId(const std::string& circle) const;
  void createCircle(const std::string& circle);
  void addToCircle(const std::string& circle, const UserId& member);
  privacy::RevocationReport removeFromCircle(const std::string& circle,
                                             const UserId& member);

  /// Encrypts a post to a circle, signs it, and chains it on the timeline.
  const PublishedItem& publish(const std::string& circle,
                               const std::string& text,
                               social::Timestamp now, util::Rng& rng);

  const std::vector<PublishedItem>& wall() const { return wall_; }
  const integrity::Timeline& timeline() const { return timeline_; }

  /// Reads item `index` from `author`'s wall as this user: verifies the
  /// author's chain, then decrypts through the ACL. std::nullopt if the
  /// chain fails to verify or this user lacks access.
  std::optional<social::Post> read(const DosnNode& author,
                                   std::size_t index) const;

  /// Verifies another node's full timeline against its registered key.
  bool verifyTimelineOf(const DosnNode& author) const;

 private:
  const pkcrypto::DlogGroup& group_;
  social::IdentityRegistry& registry_;
  AccessController& acl_;
  social::Keyring keyring_;
  integrity::Timeline timeline_;
  std::vector<PublishedItem> wall_;
  social::PostId nextPostId_ = 1;
};

}  // namespace dosn::core
