// Synthetic social-graph generators (DESIGN.md §3.4): Erdős–Rényi,
// Watts–Strogatz small-world and Barabási–Albert preferential attachment —
// the standard models the DOSN evaluation literature uses for workloads.
// Edge trust values are drawn uniformly from [minTrust, 1].
#pragma once

#include "dosn/social/graph.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::social {

/// Names users "u0".."u{n-1}".
UserId syntheticUser(std::size_t index);

SocialGraph erdosRenyi(std::size_t n, double edgeProbability, util::Rng& rng,
                       double minTrust = 0.5);

/// Ring lattice with k neighbors per side, rewired with probability beta.
SocialGraph wattsStrogatz(std::size_t n, std::size_t k, double beta,
                          util::Rng& rng, double minTrust = 0.5);

/// Preferential attachment: each new node links to m existing nodes.
SocialGraph barabasiAlbert(std::size_t n, std::size_t m, util::Rng& rng,
                           double minTrust = 0.5);

/// Zipf-follower graph: every user befriends `followsPerUser` targets drawn
/// from a Zipf(exponent) popularity distribution over user ranks — the
/// celebrity-skewed follower structure microblog workloads assume (a few
/// high-rank users collect most edges). Self-loops and duplicate picks are
/// re-drawn with a bounded retry, so low-degree stragglers are possible in
/// pathological parameterizations but the graph is always simple.
SocialGraph zipfFollower(std::size_t n, std::size_t followsPerUser,
                         double exponent, util::Rng& rng,
                         double minTrust = 0.5);

}  // namespace dosn::social
