// Social content objects: profiles, posts, comments — the data every privacy
// and integrity mechanism in the library protects. All objects have a stable
// binary encoding (the bytes that get hashed, signed and encrypted).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "dosn/social/identity.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::social {

using PostId = std::uint64_t;
using Timestamp = std::uint64_t;  // microseconds (simulator time)

struct Post {
  UserId author;
  PostId id = 0;
  Timestamp created = 0;
  std::string text;

  util::Bytes serialize() const;
  static std::optional<Post> deserialize(util::BytesView data);
  bool operator==(const Post&) const = default;
};

struct Comment {
  UserId commenter;
  PostId post = 0;        // the post this comment belongs to
  Timestamp created = 0;
  std::string text;

  util::Bytes serialize() const;
  static std::optional<Comment> deserialize(util::BytesView data);
  bool operator==(const Comment&) const = default;
};

struct Profile {
  UserId user;
  std::map<std::string, std::string> fields;  // "name", "birthday", ...

  util::Bytes serialize() const;
  static std::optional<Profile> deserialize(util::BytesView data);
  bool operator==(const Profile&) const = default;
};

}  // namespace dosn::social
