// Attribute-inference ("implicit information leakage" / "network inference",
// paper §VI): even when a user hides an attribute, it "can implicitly be
// derived from published data" — here, from the attribute's distribution
// among the user's friends (homophily).
//
// The attack is a neighbor-majority-vote classifier; the defense surface is
// how many of a user's friends also hide the attribute. Used by
// bench_inference to quantify the leak the survey says "no solution ... has
// been proposed so far" for.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "dosn/social/graph.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::social {

/// A single-attribute world: every user has a true value; some publish it.
class AttributeWorld {
 public:
  void setTrueValue(const UserId& user, const std::string& value);
  void setPublished(const UserId& user, bool published);

  std::optional<std::string> trueValue(const UserId& user) const;
  /// What the attacker can see: the value iff the user published it.
  std::optional<std::string> visibleValue(const UserId& user) const;
  bool isHidden(const UserId& user) const;

  std::set<UserId> hiddenUsers() const;

 private:
  std::map<UserId, std::string> values_;
  std::set<UserId> published_;
};

/// Plants a homophilous attribute over a graph: seeds `valueCount` distinct
/// values on random users and spreads by label propagation (friends tend to
/// share values with probability `homophily`); then hides the value of a
/// `hiddenFraction` of users.
AttributeWorld plantHomophilousAttribute(const SocialGraph& graph,
                                         std::size_t valueCount,
                                         double homophily,
                                         double hiddenFraction, util::Rng& rng);

/// The attack: guess a hidden user's value as the majority among the VISIBLE
/// values of their friends. std::nullopt when no friend publishes anything.
std::optional<std::string> inferByNeighborMajority(const SocialGraph& graph,
                                                   const AttributeWorld& world,
                                                   const UserId& user);

struct InferenceReport {
  std::size_t hidden = 0;       // users attacked
  std::size_t inferred = 0;     // attack produced a guess
  std::size_t correct = 0;      // guess matched the hidden true value
  double accuracyOnInferred() const {
    return inferred ? static_cast<double>(correct) / static_cast<double>(inferred)
                    : 0.0;
  }
  double leakRate() const {
    return hidden ? static_cast<double>(correct) / static_cast<double>(hidden)
                  : 0.0;
  }
};

/// Runs the attack against every hidden user.
InferenceReport runInferenceAttack(const SocialGraph& graph,
                                   const AttributeWorld& world);

}  // namespace dosn::social
