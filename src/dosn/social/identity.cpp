#include "dosn/social/identity.hpp"

namespace dosn::social {

Keyring createKeyring(const pkcrypto::DlogGroup& group, UserId user,
                      util::Rng& rng) {
  Keyring keyring;
  keyring.user = std::move(user);
  keyring.signing = pkcrypto::schnorrGenerate(group, rng);
  keyring.encryption = pkcrypto::elgamalGenerate(group, rng);
  keyring.masterSymmetric = rng.bytes(32);
  return keyring;
}

PublicIdentity publicIdentity(const Keyring& keyring) {
  return PublicIdentity{keyring.user, keyring.signing.pub,
                        keyring.encryption.pub};
}

void IdentityRegistry::registerIdentity(PublicIdentity identity) {
  identities_[identity.user] = std::move(identity);
}

std::optional<PublicIdentity> IdentityRegistry::lookup(const UserId& user) const {
  const auto it = identities_.find(user);
  if (it == identities_.end()) return std::nullopt;
  return it->second;
}

bool IdentityRegistry::contains(const UserId& user) const {
  return identities_.count(user) > 0;
}

}  // namespace dosn::social
