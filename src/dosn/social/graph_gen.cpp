#include "dosn/social/graph_gen.hpp"

#include <stdexcept>

namespace dosn::social {

namespace {

double randomTrust(util::Rng& rng, double minTrust) {
  return minTrust + (1.0 - minTrust) * rng.uniformReal();
}

}  // namespace

UserId syntheticUser(std::size_t index) { return "u" + std::to_string(index); }

SocialGraph erdosRenyi(std::size_t n, double edgeProbability, util::Rng& rng,
                       double minTrust) {
  SocialGraph graph;
  for (std::size_t i = 0; i < n; ++i) graph.addUser(syntheticUser(i));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(edgeProbability)) {
        graph.addFriendship(syntheticUser(i), syntheticUser(j),
                            randomTrust(rng, minTrust));
      }
    }
  }
  return graph;
}

SocialGraph wattsStrogatz(std::size_t n, std::size_t k, double beta,
                          util::Rng& rng, double minTrust) {
  if (n < 2 * k + 1) throw std::invalid_argument("wattsStrogatz: n too small");
  SocialGraph graph;
  for (std::size_t i = 0; i < n; ++i) graph.addUser(syntheticUser(i));
  // Ring lattice.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      const std::size_t j = (i + d) % n;
      if (!graph.areFriends(syntheticUser(i), syntheticUser(j))) {
        graph.addFriendship(syntheticUser(i), syntheticUser(j),
                            randomTrust(rng, minTrust));
      }
    }
  }
  // Rewire.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      if (!rng.chance(beta)) continue;
      const std::size_t j = (i + d) % n;
      if (!graph.areFriends(syntheticUser(i), syntheticUser(j))) continue;
      // Pick a new endpoint that isn't i, j or an existing friend of i.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const std::size_t t = static_cast<std::size_t>(rng.uniform(n));
        if (t == i || t == j) continue;
        if (graph.areFriends(syntheticUser(i), syntheticUser(t))) continue;
        graph.removeFriendship(syntheticUser(i), syntheticUser(j));
        graph.addFriendship(syntheticUser(i), syntheticUser(t),
                            randomTrust(rng, minTrust));
        break;
      }
    }
  }
  return graph;
}

SocialGraph barabasiAlbert(std::size_t n, std::size_t m, util::Rng& rng,
                           double minTrust) {
  if (m == 0 || n < m + 1) throw std::invalid_argument("barabasiAlbert: bad n/m");
  SocialGraph graph;
  // Endpoint multiset for preferential attachment.
  std::vector<std::size_t> endpoints;
  // Seed: complete graph on m+1 nodes.
  for (std::size_t i = 0; i <= m; ++i) graph.addUser(syntheticUser(i));
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = i + 1; j <= m; ++j) {
      graph.addFriendship(syntheticUser(i), syntheticUser(j),
                          randomTrust(rng, minTrust));
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (std::size_t i = m + 1; i < n; ++i) {
    graph.addUser(syntheticUser(i));
    std::set<std::size_t> targets;
    while (targets.size() < m) {
      const std::size_t pick = endpoints[rng.uniform(endpoints.size())];
      if (pick != i) targets.insert(pick);
    }
    for (const std::size_t t : targets) {
      graph.addFriendship(syntheticUser(i), syntheticUser(t),
                          randomTrust(rng, minTrust));
      endpoints.push_back(i);
      endpoints.push_back(t);
    }
  }
  return graph;
}

SocialGraph zipfFollower(std::size_t n, std::size_t followsPerUser,
                         double exponent, util::Rng& rng, double minTrust) {
  if (n < 2) throw std::invalid_argument("zipfFollower: n too small");
  SocialGraph graph;
  for (std::size_t i = 0; i < n; ++i) graph.addUser(syntheticUser(i));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < followsPerUser; ++f) {
      // Rng::zipf returns a 0-based rank where rank 0 is the most popular;
      // map ranks onto user indices directly so u0, u1, ... are the
      // celebrities.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const std::size_t t = rng.zipf(n, exponent);
        if (t == i || graph.areFriends(syntheticUser(i), syntheticUser(t))) {
          continue;
        }
        graph.addFriendship(syntheticUser(i), syntheticUser(t),
                            randomTrust(rng, minTrust));
        break;
      }
    }
  }
  return graph;
}

}  // namespace dosn::social
