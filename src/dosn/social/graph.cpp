#include "dosn/social/graph.hpp"

#include <deque>
#include <stdexcept>

namespace dosn::social {

void SocialGraph::addUser(const UserId& user) { adjacency_[user]; }

bool SocialGraph::hasUser(const UserId& user) const {
  return adjacency_.count(user) > 0;
}

std::vector<UserId> SocialGraph::users() const {
  std::vector<UserId> out;
  out.reserve(adjacency_.size());
  for (const auto& [user, friends] : adjacency_) out.push_back(user);
  return out;
}

void SocialGraph::addFriendship(const UserId& a, const UserId& b, double trust) {
  if (a == b) throw std::invalid_argument("addFriendship: self-loop");
  if (trust < 0.0 || trust > 1.0) {
    throw std::invalid_argument("addFriendship: trust must be in [0,1]");
  }
  adjacency_[a][b] = trust;
  adjacency_[b][a] = trust;
}

void SocialGraph::removeFriendship(const UserId& a, const UserId& b) {
  const auto ai = adjacency_.find(a);
  if (ai != adjacency_.end()) ai->second.erase(b);
  const auto bi = adjacency_.find(b);
  if (bi != adjacency_.end()) bi->second.erase(a);
}

bool SocialGraph::areFriends(const UserId& a, const UserId& b) const {
  const auto it = adjacency_.find(a);
  return it != adjacency_.end() && it->second.count(b) > 0;
}

std::optional<double> SocialGraph::trust(const UserId& a, const UserId& b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return std::nullopt;
  const auto edge = it->second.find(b);
  if (edge == it->second.end()) return std::nullopt;
  return edge->second;
}

void SocialGraph::setTrust(const UserId& a, const UserId& b, double trust) {
  if (!areFriends(a, b)) throw std::invalid_argument("setTrust: not friends");
  if (trust < 0.0 || trust > 1.0) {
    throw std::invalid_argument("setTrust: trust must be in [0,1]");
  }
  adjacency_[a][b] = trust;
  adjacency_[b][a] = trust;
}

std::vector<UserId> SocialGraph::friendsOf(const UserId& user) const {
  std::vector<UserId> out;
  const auto it = adjacency_.find(user);
  if (it == adjacency_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [friendId, trust] : it->second) out.push_back(friendId);
  return out;
}

std::size_t SocialGraph::degree(const UserId& user) const {
  const auto it = adjacency_.find(user);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::set<UserId> SocialGraph::friendsOfFriends(const UserId& user) const {
  std::set<UserId> out;
  for (const UserId& f : friendsOf(user)) {
    for (const UserId& ff : friendsOf(f)) {
      if (ff != user && !areFriends(user, ff)) out.insert(ff);
    }
  }
  return out;
}

std::optional<std::size_t> SocialGraph::distance(const UserId& from,
                                                 const UserId& to) const {
  if (!hasUser(from) || !hasUser(to)) return std::nullopt;
  if (from == to) return 0;
  std::map<UserId, std::size_t> dist;
  std::deque<UserId> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const UserId current = queue.front();
    queue.pop_front();
    for (const UserId& next : friendsOf(current)) {
      if (dist.count(next)) continue;
      dist[next] = dist[current] + 1;
      if (next == to) return dist[next];
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

std::size_t SocialGraph::edgeCount() const {
  std::size_t total = 0;
  for (const auto& [user, friends] : adjacency_) total += friends.size();
  return total / 2;
}

}  // namespace dosn::social
