// Social-graph anonymization and de-anonymization (paper §VI: "there should
// be an 'anonymized' way that let the OSN providers to publish these data
// sets ... one can reverse the anonymization process" ).
//
// Anonymization: replace user ids with pseudonyms, optionally perturbing the
// structure (random edge additions/deletions).
// De-anonymization: the classic degree-sequence re-identification attack —
// match anonymized nodes back to known users by (perturbed) degree, measuring
// how much structure alone reveals.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dosn/social/graph.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::social {

struct AnonymizedGraph {
  SocialGraph graph;  // pseudonymous node ids ("n0", "n1", ...)
  /// Ground truth (held by the publisher only; attacks don't see it).
  std::map<UserId, UserId> pseudonymOf;
};

/// Naive anonymization: pseudonyms only, structure untouched.
AnonymizedGraph anonymize(const SocialGraph& graph, util::Rng& rng);

/// Perturbed anonymization: pseudonyms + flip `edgePerturbation` fraction of
/// edges (delete an existing edge / add a random one each).
AnonymizedGraph anonymizePerturbed(const SocialGraph& graph,
                                   double edgePerturbation, util::Rng& rng);

/// Degree-based re-identification: the attacker knows the original graph
/// (auxiliary information) and matches each original user to the anonymized
/// node with the closest degree (greedy, distinct assignments, largest
/// degrees first — rare degrees are most identifying).
/// Returns attacker's mapping original-user -> claimed pseudonym.
std::map<UserId, UserId> degreeAttack(const SocialGraph& original,
                                      const SocialGraph& anonymized);

/// Fraction of users the attack re-identified correctly.
double reidentificationRate(const AnonymizedGraph& published,
                            const std::map<UserId, UserId>& attack);

}  // namespace dosn::social
