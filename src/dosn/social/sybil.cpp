#include "dosn/social/sybil.hpp"

#include <stdexcept>

namespace dosn::social {

SybilGuard::SybilGuard(const SocialGraph& graph, SybilGuardConfig config,
                       util::Rng& rng)
    : graph_(graph), config_(config) {
  // Precompute every user's walk set.
  for (const UserId& user : graph.users()) {
    std::set<UserId>& touched = walkSets_[user];
    for (std::size_t w = 0; w < config_.walkCount; ++w) {
      UserId current = user;
      for (std::size_t step = 0; step < config_.walkLength; ++step) {
        const auto friends = graph_.friendsOf(current);
        if (friends.empty()) break;
        current = friends[rng.uniform(friends.size())];
        touched.insert(current);
      }
    }
  }
}

const std::set<UserId>& SybilGuard::walkSet(const UserId& user) const {
  static const std::set<UserId> kEmpty;
  const auto it = walkSets_.find(user);
  return it == walkSets_.end() ? kEmpty : it->second;
}

double SybilGuard::intersectionFraction(const UserId& verifier,
                                        const UserId& suspect) const {
  const std::set<UserId>& mine = walkSet(verifier);
  const std::set<UserId>& theirs = walkSet(suspect);
  if (mine.empty() || theirs.empty()) return 0.0;
  std::size_t hits = 0;
  for (const UserId& node : mine) {
    if (theirs.count(node)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(mine.size());
}

bool SybilGuard::accepts(const UserId& verifier, const UserId& suspect) const {
  return intersectionFraction(verifier, suspect) >= config_.acceptThreshold;
}

std::vector<UserId> plantSybilRegion(SocialGraph& graph,
                                     std::size_t sybilCount,
                                     std::size_t attackEdges, util::Rng& rng) {
  if (sybilCount < 2) throw std::invalid_argument("plantSybilRegion: too few");
  const std::vector<UserId> honest = graph.users();
  if (honest.empty()) throw std::invalid_argument("plantSybilRegion: empty graph");

  std::vector<UserId> sybils;
  for (std::size_t i = 0; i < sybilCount; ++i) {
    sybils.push_back("sybil" + std::to_string(i));
    graph.addUser(sybils.back());
  }
  // Dense sybil region: ring + random chords (the attacker fully controls
  // these edges).
  for (std::size_t i = 0; i < sybilCount; ++i) {
    graph.addFriendship(sybils[i], sybils[(i + 1) % sybilCount], 1.0);
    const std::size_t j = rng.uniform(sybilCount);
    if (j != i && !graph.areFriends(sybils[i], sybils[j])) {
      graph.addFriendship(sybils[i], sybils[j], 1.0);
    }
  }
  // Few attack edges into the honest region (the scarce resource).
  for (std::size_t e = 0; e < attackEdges; ++e) {
    const UserId& sybil = sybils[rng.uniform(sybils.size())];
    const UserId& victim = honest[rng.uniform(honest.size())];
    if (!graph.areFriends(sybil, victim)) {
      graph.addFriendship(sybil, victim, 0.6);
    }
  }
  return sybils;
}

}  // namespace dosn::social
