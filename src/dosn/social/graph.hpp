// The social graph: users, weighted friendships (trust in [0,1]) and basic
// queries. This is the structure the paper warns "represents the users
// connections ... source of important information".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/social/identity.hpp"

namespace dosn::social {

class SocialGraph {
 public:
  void addUser(const UserId& user);
  bool hasUser(const UserId& user) const;
  std::size_t userCount() const { return adjacency_.size(); }
  std::vector<UserId> users() const;

  /// Adds an undirected friendship with symmetric trust. Trust must be in
  /// [0, 1]; users are added implicitly.
  void addFriendship(const UserId& a, const UserId& b, double trust = 1.0);
  void removeFriendship(const UserId& a, const UserId& b);

  bool areFriends(const UserId& a, const UserId& b) const;
  std::optional<double> trust(const UserId& a, const UserId& b) const;
  /// Updates trust on an existing edge.
  void setTrust(const UserId& a, const UserId& b, double trust);

  std::vector<UserId> friendsOf(const UserId& user) const;
  std::size_t degree(const UserId& user) const;

  /// Friends-of-friends excluding direct friends and self.
  std::set<UserId> friendsOfFriends(const UserId& user) const;

  /// Hop distance via BFS; std::nullopt if unreachable.
  std::optional<std::size_t> distance(const UserId& from, const UserId& to) const;

  std::size_t edgeCount() const;

 private:
  std::map<UserId, std::map<UserId, double>> adjacency_;
};

}  // namespace dosn::social
