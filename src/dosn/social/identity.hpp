// User identities and keyrings. Verification keys are distributed
// "out-of-band" (paper §IV-A: physical meeting / e-mail) — modeled by the
// IdentityRegistry, a trusted directory of verified public keys.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "dosn/pkcrypto/elgamal.hpp"
#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::social {

using UserId = std::string;

/// Everything a user keeps private.
struct Keyring {
  UserId user;
  pkcrypto::SchnorrPrivateKey signing;     // post/message signatures
  pkcrypto::ElGamalPrivateKey encryption;  // inbound encrypted messages
  util::Bytes masterSymmetric;             // local-data encryption root
};

/// The public half other users see.
struct PublicIdentity {
  UserId user;
  pkcrypto::SchnorrPublicKey signingKey;
  pkcrypto::ElGamalPublicKey encryptionKey;
};

Keyring createKeyring(const pkcrypto::DlogGroup& group, UserId user,
                      util::Rng& rng);
PublicIdentity publicIdentity(const Keyring& keyring);

/// Out-of-band verified key directory (paper §IV-A's "distributing proper
/// keys out-of-band").
class IdentityRegistry {
 public:
  void registerIdentity(PublicIdentity identity);
  std::optional<PublicIdentity> lookup(const UserId& user) const;
  bool contains(const UserId& user) const;
  std::size_t size() const { return identities_.size(); }

 private:
  std::map<UserId, PublicIdentity> identities_;
};

}  // namespace dosn::social
