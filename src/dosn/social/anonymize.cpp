#include "dosn/social/anonymize.hpp"

#include <algorithm>

namespace dosn::social {

namespace {

AnonymizedGraph pseudonymize(const SocialGraph& graph, util::Rng& rng) {
  AnonymizedGraph out;
  std::vector<UserId> users = graph.users();
  rng.shuffle(users);
  for (std::size_t i = 0; i < users.size(); ++i) {
    out.pseudonymOf[users[i]] = "n" + std::to_string(i);
    out.graph.addUser("n" + std::to_string(i));
  }
  for (const UserId& u : graph.users()) {
    for (const UserId& v : graph.friendsOf(u)) {
      if (u < v) {
        out.graph.addFriendship(out.pseudonymOf[u], out.pseudonymOf[v],
                                *graph.trust(u, v));
      }
    }
  }
  return out;
}

}  // namespace

AnonymizedGraph anonymize(const SocialGraph& graph, util::Rng& rng) {
  return pseudonymize(graph, rng);
}

AnonymizedGraph anonymizePerturbed(const SocialGraph& graph,
                                   double edgePerturbation, util::Rng& rng) {
  AnonymizedGraph out = pseudonymize(graph, rng);
  // Collect the current edge list.
  std::vector<std::pair<UserId, UserId>> edges;
  for (const UserId& u : out.graph.users()) {
    for (const UserId& v : out.graph.friendsOf(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  const std::vector<UserId> nodes = out.graph.users();
  const auto flips =
      static_cast<std::size_t>(edgePerturbation * static_cast<double>(edges.size()));
  for (std::size_t i = 0; i < flips && !edges.empty(); ++i) {
    // Delete a random existing edge...
    const std::size_t pick = rng.uniform(edges.size());
    out.graph.removeFriendship(edges[pick].first, edges[pick].second);
    edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(pick));
    // ...and add a random new one.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const UserId& a = nodes[rng.uniform(nodes.size())];
      const UserId& b = nodes[rng.uniform(nodes.size())];
      if (a == b || out.graph.areFriends(a, b)) continue;
      out.graph.addFriendship(a, b, 0.5);
      edges.emplace_back(std::min(a, b), std::max(a, b));
      break;
    }
  }
  return out;
}

std::map<UserId, UserId> degreeAttack(const SocialGraph& original,
                                      const SocialGraph& anonymized) {
  // Sort both sides by degree (descending); match greedily by closest degree.
  auto byDegree = [](const SocialGraph& g) {
    std::vector<std::pair<std::size_t, UserId>> out;
    for (const UserId& u : g.users()) out.emplace_back(g.degree(u), u);
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    return out;
  };
  const auto origRanked = byDegree(original);
  const auto anonRanked = byDegree(anonymized);
  std::map<UserId, UserId> mapping;
  const std::size_t n = std::min(origRanked.size(), anonRanked.size());
  for (std::size_t i = 0; i < n; ++i) {
    mapping[origRanked[i].second] = anonRanked[i].second;
  }
  return mapping;
}

double reidentificationRate(const AnonymizedGraph& published,
                            const std::map<UserId, UserId>& attack) {
  if (published.pseudonymOf.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& [user, pseudonym] : published.pseudonymOf) {
    const auto it = attack.find(user);
    if (it != attack.end() && it->second == pseudonym) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(published.pseudonymOf.size());
}

}  // namespace dosn::social
