#include "dosn/social/content.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::social {

util::Bytes Post::serialize() const {
  util::Writer w;
  w.str(author);
  w.u64(id);
  w.u64(created);
  w.str(text);
  return w.take();
}

std::optional<Post> Post::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    Post post;
    post.author = r.str();
    post.id = r.u64();
    post.created = r.u64();
    post.text = r.str();
    r.expectEnd();
    return post;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

util::Bytes Comment::serialize() const {
  util::Writer w;
  w.str(commenter);
  w.u64(post);
  w.u64(created);
  w.str(text);
  return w.take();
}

std::optional<Comment> Comment::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    Comment comment;
    comment.commenter = r.str();
    comment.post = r.u64();
    comment.created = r.u64();
    comment.text = r.str();
    r.expectEnd();
    return comment;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

util::Bytes Profile::serialize() const {
  util::Writer w;
  w.str(user);
  w.u32(static_cast<std::uint32_t>(fields.size()));
  for (const auto& [key, value] : fields) {
    w.str(key);
    w.str(value);
  }
  return w.take();
}

std::optional<Profile> Profile::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    Profile profile;
    profile.user = r.str();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string key = r.str();
      profile.fields.emplace(std::move(key), r.str());
    }
    r.expectEnd();
    return profile;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace dosn::social
