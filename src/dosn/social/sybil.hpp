// Sybil-attack mitigation (paper §VI "other concerns": "in a sybil attack,
// the reputation system of a network will be subverted by attacker who makes
// (usually multiple) pseudonymous entities").
//
// Implements a SybilGuard-style detector: sybil regions attach to the honest
// social graph through few "attack edges", so short random walks started at a
// verifier rarely cross into the sybil region. A suspect is accepted iff
// enough of the verifier's walks intersect the suspect's walks.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "dosn/social/graph.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::social {

struct SybilGuardConfig {
  std::size_t walkLength = 10;    // ~ sqrt(n log n) in the original paper
  std::size_t walkCount = 24;     // walks per principal
  double acceptThreshold = 0.25;  // fraction of walks that must intersect
};

class SybilGuard {
 public:
  SybilGuard(const SocialGraph& graph, SybilGuardConfig config, util::Rng& rng);

  /// The verifier accepts the suspect iff >= threshold of the verifier's
  /// walks intersect the suspect's walk set (node intersection).
  bool accepts(const UserId& verifier, const UserId& suspect) const;

  /// Fraction of the verifier's walks that intersect the suspect's.
  double intersectionFraction(const UserId& verifier,
                              const UserId& suspect) const;

 private:
  const std::set<UserId>& walkSet(const UserId& user) const;

  const SocialGraph& graph_;
  SybilGuardConfig config_;
  // Nodes touched by each user's random walks (precomputed).
  std::map<UserId, std::set<UserId>> walkSets_;
};

/// Test/benchmark helper: grafts a sybil region of `sybilCount` fake users
/// (densely interconnected) onto `graph`, connected to honest users through
/// exactly `attackEdges` edges. Returns the sybil user ids.
std::vector<UserId> plantSybilRegion(SocialGraph& graph,
                                     std::size_t sybilCount,
                                     std::size_t attackEdges, util::Rng& rng);

}  // namespace dosn::social
