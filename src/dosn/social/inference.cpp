#include "dosn/social/inference.hpp"

#include <algorithm>

namespace dosn::social {

void AttributeWorld::setTrueValue(const UserId& user, const std::string& value) {
  values_[user] = value;
}

void AttributeWorld::setPublished(const UserId& user, bool published) {
  if (published) {
    published_.insert(user);
  } else {
    published_.erase(user);
  }
}

std::optional<std::string> AttributeWorld::trueValue(const UserId& user) const {
  const auto it = values_.find(user);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> AttributeWorld::visibleValue(const UserId& user) const {
  if (!published_.count(user)) return std::nullopt;
  return trueValue(user);
}

bool AttributeWorld::isHidden(const UserId& user) const {
  return values_.count(user) > 0 && !published_.count(user);
}

std::set<UserId> AttributeWorld::hiddenUsers() const {
  std::set<UserId> out;
  for (const auto& [user, value] : values_) {
    if (!published_.count(user)) out.insert(user);
  }
  return out;
}

AttributeWorld plantHomophilousAttribute(const SocialGraph& graph,
                                         std::size_t valueCount,
                                         double homophily,
                                         double hiddenFraction, util::Rng& rng) {
  AttributeWorld world;
  const std::vector<UserId> users = graph.users();
  auto valueName = [](std::size_t i) { return "v" + std::to_string(i); };

  // Assign values: with probability `homophily` copy a random friend's
  // already-assigned value, else pick uniformly. Iterate in random order.
  std::vector<UserId> order = users;
  rng.shuffle(order);
  for (const UserId& user : order) {
    std::string value;
    std::vector<std::string> friendValues;
    for (const UserId& f : graph.friendsOf(user)) {
      if (const auto v = world.trueValue(f)) friendValues.push_back(*v);
    }
    if (!friendValues.empty() && rng.chance(homophily)) {
      value = friendValues[rng.uniform(friendValues.size())];
    } else {
      value = valueName(rng.uniform(valueCount));
    }
    world.setTrueValue(user, value);
    world.setPublished(user, true);
  }
  // Hide a fraction.
  for (const UserId& user : users) {
    if (rng.chance(hiddenFraction)) world.setPublished(user, false);
  }
  return world;
}

std::optional<std::string> inferByNeighborMajority(const SocialGraph& graph,
                                                   const AttributeWorld& world,
                                                   const UserId& user) {
  std::map<std::string, std::size_t> votes;
  for (const UserId& f : graph.friendsOf(user)) {
    if (const auto value = world.visibleValue(f)) ++votes[*value];
  }
  if (votes.empty()) return std::nullopt;
  return std::max_element(votes.begin(), votes.end(),
                          [](const auto& a, const auto& b) {
                            if (a.second != b.second) return a.second < b.second;
                            return a.first > b.first;  // deterministic tie-break
                          })
      ->first;
}

InferenceReport runInferenceAttack(const SocialGraph& graph,
                                   const AttributeWorld& world) {
  InferenceReport report;
  for (const UserId& user : world.hiddenUsers()) {
    ++report.hidden;
    const auto guess = inferByNeighborMajority(graph, world, user);
    if (!guess) continue;
    ++report.inferred;
    if (guess == world.trueValue(user)) ++report.correct;
  }
  return report;
}

}  // namespace dosn::social
