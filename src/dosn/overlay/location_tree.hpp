// Distributed location trees (paper §II-B: "Vis-a-vis designed its own
// structure distributed location trees, which provides efficient and
// scalable sharing"). Users' virtual individual servers register under
// hierarchical location paths ("tr/istanbul/kadikoy"); region queries
// resolve by descending the tree, touching only the queried subtree.
//
// Each tree node is coordinated by one registered participant (Vis-a-vis
// elects coordinators among VIS instances); here the first registrant under
// a node becomes its coordinator, handed off when it deregisters.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dosn/social/identity.hpp"

namespace dosn::overlay {

/// A location path like "tr/istanbul/kadikoy" (validated, lowercase).
using LocationPath = std::string;

class LocationTree {
 public:
  /// Registers a user at a leaf region. Creates intermediate nodes on
  /// demand. Returns false for malformed paths (empty segments).
  bool registerUser(const social::UserId& user, const LocationPath& path);

  /// Removes the user's registration (no-op if absent).
  void deregisterUser(const social::UserId& user);

  /// All users registered at or below the region.
  std::vector<social::UserId> usersIn(const LocationPath& path) const;

  /// Users registered exactly at the region (not descendants).
  std::vector<social::UserId> usersExactlyAt(const LocationPath& path) const;

  /// The coordinator of a region's node; std::nullopt for unknown regions or
  /// regions whose subtree is empty.
  std::optional<social::UserId> coordinatorOf(const LocationPath& path) const;

  /// Where a user is registered.
  std::optional<LocationPath> locationOf(const social::UserId& user) const;

  /// Tree nodes visited by a usersIn() query (the "efficient sharing" claim:
  /// proportional to the queried subtree, not the whole tree).
  std::size_t nodesTouchedBy(const LocationPath& path) const;

  std::size_t regionCount() const;
  std::size_t userCount() const { return locations_.size(); }

 private:
  struct Node {
    std::set<social::UserId> residents;
    std::optional<social::UserId> coordinator;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  static bool splitPath(const LocationPath& path,
                        std::vector<std::string>& segments);
  const Node* findNode(const LocationPath& path) const;
  void collect(const Node& node, std::vector<social::UserId>& out) const;
  static std::size_t countNodes(const Node& node);
  void electCoordinator(Node& node);

  Node root_;
  std::map<social::UserId, LocationPath> locations_;
};

}  // namespace dosn::overlay
