#include "dosn/overlay/replication.hpp"

#include "dosn/util/error.hpp"

namespace dosn::overlay {

ReplicationManager::ReplicationManager(sim::Network& network)
    : network_(network) {}

std::vector<sim::NodeAddr> ReplicationManager::place(
    const OverlayId& item, std::size_t replicas,
    const std::vector<sim::NodeAddr>& candidates) {
  if (replicas == 0 || candidates.empty()) {
    throw util::NetError("ReplicationManager::place: bad arguments");
  }
  std::vector<sim::NodeAddr> pool = candidates;
  network_.rng().shuffle(pool);
  if (pool.size() > replicas) pool.resize(replicas);
  ItemState& state = items_[item];
  state.replicas = std::set<sim::NodeAddr>(pool.begin(), pool.end());
  state.target = replicas;
  return pool;
}

std::size_t ReplicationManager::repair(
    const std::vector<sim::NodeAddr>& candidates) {
  std::size_t added = 0;
  for (auto& [item, state] : items_) {
    std::size_t online = 0;
    for (const sim::NodeAddr node : state.replicas) {
      if (network_.isOnline(node)) ++online;
    }
    if (online >= state.target) continue;
    // Recruit online candidates not already holding a replica.
    std::vector<sim::NodeAddr> pool;
    for (const sim::NodeAddr node : candidates) {
      if (network_.isOnline(node) && !state.replicas.count(node)) {
        pool.push_back(node);
      }
    }
    network_.rng().shuffle(pool);
    for (const sim::NodeAddr node : pool) {
      if (online >= state.target) break;
      state.replicas.insert(node);
      ++online;
      ++added;
    }
  }
  return added;
}

bool ReplicationManager::available(const OverlayId& item) const {
  return onlineReplicas(item) > 0;
}

std::size_t ReplicationManager::onlineReplicas(const OverlayId& item) const {
  const auto it = items_.find(item);
  if (it == items_.end()) return 0;
  std::size_t online = 0;
  for (const sim::NodeAddr node : it->second.replicas) {
    if (network_.isOnline(node)) ++online;
  }
  return online;
}

const std::set<sim::NodeAddr>& ReplicationManager::replicasOf(
    const OverlayId& item) const {
  static const std::set<sim::NodeAddr> kEmpty;
  const auto it = items_.find(item);
  return it == items_.end() ? kEmpty : it->second.replicas;
}

std::map<sim::NodeAddr, std::size_t> ReplicationManager::observerViewSizes()
    const {
  std::map<sim::NodeAddr, std::size_t> views;
  for (const auto& [item, state] : items_) {
    for (const sim::NodeAddr node : state.replicas) ++views[node];
  }
  return views;
}

AvailabilityProbe::AvailabilityProbe(ReplicationManager& manager,
                                     std::vector<OverlayId> items)
    : manager_(manager), items_(std::move(items)) {}

void AvailabilityProbe::sample() {
  for (const OverlayId& item : items_) {
    ++samples_;
    if (manager_.available(item)) ++availableObservations_;
  }
}

void AvailabilityProbe::schedule(sim::Simulator& sim, sim::SimTime interval,
                                 std::size_t count) {
  for (std::size_t i = 1; i <= count; ++i) {
    sim.schedule(interval * i, [this] { sample(); });
  }
}

double AvailabilityProbe::meanAvailability() const {
  if (samples_ == 0) return 0.0;
  return static_cast<double>(availableObservations_) /
         static_cast<double>(samples_);
}

}  // namespace dosn::overlay
