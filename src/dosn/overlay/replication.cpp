#include "dosn/overlay/replication.hpp"

#include <algorithm>

#include "dosn/sim/flat_map.hpp"
#include "dosn/sim/metrics.hpp"
#include "dosn/store/memory_store.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Interned once at static-init; per-send dispatch is by dense id.
const sim::MessageType kMsgStore("repl.store");
const sim::MessageType kMsgFetch("repl.fetch");
const sim::MessageType kMsgAck("repl.ack");
const sim::MessageType kMsgValue("repl.value");

}  // namespace


namespace {

void writeId(util::Writer& w, const OverlayId& id) {
  w.raw(util::BytesView(id.bytes));
}

OverlayId readId(util::Reader& r) {
  const util::Bytes raw = r.raw(kIdBytes);
  OverlayId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

}  // namespace

ReplicationManager::ReplicationManager(sim::Network& network,
                                       PlacementPolicy* placement)
    : network_(network),
      ownedPolicy_(placement ? nullptr
                             : std::make_unique<VanillaPolicy>(network)),
      placement_(placement ? placement : ownedPolicy_.get()) {}

ReplicationManager::ItemState* ReplicationManager::findItem(
    const OverlayId& item) {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), item,
      [](const auto& entry, const OverlayId& id) { return entry.first < id; });
  if (it == items_.end() || it->first != item) return nullptr;
  return &it->second;
}

const ReplicationManager::ItemState* ReplicationManager::findItem(
    const OverlayId& item) const {
  return const_cast<ReplicationManager*>(this)->findItem(item);
}

std::vector<sim::NodeAddr> ReplicationManager::place(
    const OverlayId& item, std::size_t replicas,
    const std::vector<sim::NodeAddr>& candidates,
    std::optional<social::UserId> owner) {
  if (replicas == 0 || candidates.empty()) {
    throw util::NetError("ReplicationManager::place: bad arguments");
  }
  const PlacementContext ctx{item, owner};
  std::vector<sim::NodeAddr> chosen =
      placement_->select(ctx, replicas, candidates);
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), item,
      [](const auto& entry, const OverlayId& id) { return entry.first < id; });
  ItemState* state;
  if (it != items_.end() && it->first == item) {
    state = &it->second;
  } else {
    state = &items_.emplace(it, item, ItemState{})->second;
  }
  state->replicas.assign(chosen.begin(), chosen.end());
  std::sort(state->replicas.begin(), state->replicas.end());
  state->replicas.erase(
      std::unique(state->replicas.begin(), state->replicas.end()),
      state->replicas.end());
  state->target = replicas;
  state->owner = std::move(owner);
  return chosen;
}

std::size_t ReplicationManager::repair(
    const std::vector<sim::NodeAddr>& candidates) {
  std::size_t added = 0;
  for (auto& [item, state] : items_) {
    std::size_t online = 0;
    for (const sim::NodeAddr node : state.replicas) {
      if (network_.isOnline(node)) ++online;
    }
    if (online >= state.target) continue;
    // Recruit online candidates not already holding a replica.
    std::vector<sim::NodeAddr> pool;
    for (const sim::NodeAddr node : candidates) {
      if (network_.isOnline(node) &&
          !std::binary_search(state.replicas.begin(), state.replicas.end(),
                              node)) {
        pool.push_back(node);
      }
    }
    if (pool.empty()) continue;
    const PlacementContext ctx{item, state.owner};
    const std::vector<sim::NodeAddr> chosen =
        placement_->select(ctx, state.target - online, pool);
    for (const sim::NodeAddr node : chosen) {
      if (online >= state.target) break;
      // Membership is re-checked by NodeAddr: a duplicate candidate must
      // never recruit the same node twice into one replica set.
      const auto pos = std::lower_bound(state.replicas.begin(),
                                        state.replicas.end(), node);
      if (pos != state.replicas.end() && *pos == node) continue;
      state.replicas.insert(pos, node);
      ++online;
      ++added;
    }
  }
  return added;
}

bool ReplicationManager::available(const OverlayId& item) const {
  return onlineReplicas(item) > 0;
}

std::size_t ReplicationManager::onlineReplicas(const OverlayId& item) const {
  const ItemState* state = findItem(item);
  if (!state) return 0;
  std::size_t online = 0;
  for (const sim::NodeAddr node : state->replicas) {
    if (network_.isOnline(node)) ++online;
  }
  return online;
}

const std::vector<sim::NodeAddr>& ReplicationManager::replicasOf(
    const OverlayId& item) const {
  static const std::vector<sim::NodeAddr> kEmpty;
  const ItemState* state = findItem(item);
  return state ? state->replicas : kEmpty;
}

std::vector<std::pair<sim::NodeAddr, std::size_t>>
ReplicationManager::observerViewSizes() const {
  sim::AddrMap<std::size_t> counts;
  for (const auto& [item, state] : items_) {
    for (const sim::NodeAddr node : state.replicas) ++counts[node];
  }
  std::vector<std::pair<sim::NodeAddr, std::size_t>> views;
  views.reserve(counts.size());
  for (const sim::NodeAddr node : counts.sortedKeys()) {
    views.emplace_back(node, *counts.find(node));
  }
  return views;
}

ReplicaHost::ReplicaHost(sim::Network& network,
                         std::unique_ptr<store::BlockStore> blocks)
    : blocks_(blocks ? std::move(blocks)
                     : std::make_unique<store::MemoryStore>()),
      endpoint_(network, "repl.host") {
  endpoint_.onRequest(
      kMsgStore,
      [this](sim::NodeAddr from, util::BytesView body, net::RpcId reqId) {
        util::Reader r(body);
        const OverlayId item = readId(r);
        const util::Bytes value = r.bytes();
        bool ok = true;
        try {
          blocks_->put(item, value);
        } catch (const store::StoreError&) {
          ok = false;
          ++storeErrors_;
          if (auto* m = endpoint_.network().metrics()) {
            m->increment("repl.store.error");
          }
        }
        util::Writer w;
        w.boolean(ok);
        endpoint_.reply(from, kMsgAck, reqId, w.buffer());
      });
  endpoint_.onRequest(
      kMsgFetch,
      [this](sim::NodeAddr from, util::BytesView body, net::RpcId reqId) {
        util::Reader r(body);
        const OverlayId item = readId(r);
        util::Writer w;
        std::optional<util::Bytes> value;
        try {
          value = blocks_->get(item);
        } catch (const store::StoreError&) {
          // Tampered/undecodable block: answer not-found — a corrupt replica
          // can deny a block, never serve a forged one.
          ++storeErrors_;
          if (auto* m = endpoint_.network().metrics()) {
            m->increment("repl.fetch.corrupt");
          }
        }
        if (value) {
          w.boolean(true);
          w.bytes(*value);
        } else {
          w.boolean(false);
        }
        endpoint_.reply(from, kMsgValue, reqId, w.buffer());
      });
}

ReplicaClient::ReplicaClient(sim::Network& network, RetryPolicy retry,
                             sim::SimTime rpcTimeout, bool adaptiveTimeout)
    : endpoint_(network, "repl.rpc"),
      retry_(retry),
      rpcTimeout_(rpcTimeout),
      adaptiveTimeout_(adaptiveTimeout) {
  if (adaptiveTimeout_) {
    net::PeerTableConfig peerConfig;
    peerConfig.retry.base = retry_;
    endpoint_.configurePeerTable(peerConfig);
  }
  // No reply observers: a corrupted ack/value still completes the call and
  // the store/fetch adapters map the unparseable body to failure (matching
  // the historical client behavior the fault tests pin down).
  endpoint_.addReplyChannel(kMsgAck);
  endpoint_.addReplyChannel(kMsgValue);
}

void ReplicaClient::sendRpc(
    sim::NodeAddr host, const std::string& type, util::Bytes body,
    std::function<void(bool ok, util::BytesView reply)> onReply) {
  net::CallOptions options;
  options.timeout = rpcTimeout_;
  options.retry = retry_;
  options.adaptiveTimeout = adaptiveTimeout_;
  endpoint_.call(host, type, body, options, std::move(onReply));
}

void ReplicaClient::store(sim::NodeAddr host, const OverlayId& item,
                          util::Bytes value, std::function<void(bool)> done) {
  util::Writer body;
  writeId(body, item);
  body.bytes(value);
  sendRpc(host, kMsgStore, body.take(),
          [done = std::move(done)](bool ok, util::BytesView reply) {
            if (!done) return;
            if (!ok) {
              done(false);
              return;
            }
            try {
              util::Reader r(reply);
              done(r.boolean());
            } catch (const util::CodecError&) {
              done(false);  // corrupted ack
            }
          });
}

void ReplicaClient::fetch(
    sim::NodeAddr host, const OverlayId& item,
    std::function<void(std::optional<util::Bytes>)> done) {
  util::Writer body;
  writeId(body, item);
  sendRpc(host, kMsgFetch, body.take(),
          [done = std::move(done)](bool ok, util::BytesView reply) {
            if (!done) return;
            if (!ok) {
              done(std::nullopt);
              return;
            }
            try {
              util::Reader r(reply);
              if (!r.boolean()) {
                done(std::nullopt);
                return;
              }
              done(r.bytes());
            } catch (const util::CodecError&) {
              done(std::nullopt);  // corrupted value frame
            }
          });
}

AvailabilityProbe::AvailabilityProbe(ReplicationManager& manager,
                                     std::vector<OverlayId> items)
    : manager_(manager), items_(std::move(items)) {}

void AvailabilityProbe::sample() {
  for (const OverlayId& item : items_) {
    ++samples_;
    if (manager_.available(item)) ++availableObservations_;
  }
}

void AvailabilityProbe::schedule(sim::Simulator& sim, sim::SimTime interval,
                                 std::size_t count) {
  for (std::size_t i = 1; i <= count; ++i) {
    sim.schedule(interval * i, [this] { sample(); });
  }
}

double AvailabilityProbe::meanAvailability() const {
  if (samples_ == 0) return 0.0;
  return static_cast<double>(availableObservations_) /
         static_cast<double>(samples_);
}

}  // namespace dosn::overlay
