// Unstructured overlay (paper §II-B): no index anywhere; lookups are TTL-
// limited floods over a random neighbor graph. "This kind of management has
// almost zero overhead" — zero *maintenance* overhead, paid for at query time.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"

namespace dosn::overlay {

class FloodingNode {
 public:
  FloodingNode(sim::Network& network, OverlayId id);

  const OverlayId& id() const { return id_; }
  sim::NodeAddr addr() const { return addr_; }

  /// Adds a bidirectional link (call on both nodes, or use linkNodes).
  void addNeighbor(sim::NodeAddr neighbor);
  const std::vector<sim::NodeAddr>& neighbors() const { return neighbors_; }

  /// Publishes a value locally (floods nothing; unstructured storage is
  /// owner-local).
  void publish(const OverlayId& key, util::Bytes value);

  /// Floods a query with the given TTL. The callback fires once: with the
  /// value on the first hit, or std::nullopt when `timeout` sim-time passes.
  void search(const OverlayId& key, int ttl, sim::SimTime timeout,
              std::function<void(std::optional<util::Bytes>)> done);

 private:
  void onMessage(sim::NodeAddr from, const sim::Message& msg);

  sim::Network& network_;
  OverlayId id_;
  sim::NodeAddr addr_;
  std::vector<sim::NodeAddr> neighbors_;
  std::map<OverlayId, util::Bytes> store_;
  std::set<std::uint64_t> seenQueries_;
  std::map<std::uint64_t, std::function<void(std::optional<util::Bytes>)>>
      pendingSearches_;
  std::uint64_t nextQueryId_ = 1;
};

/// Convenience: creates a bidirectional link.
void linkNodes(FloodingNode& a, FloodingNode& b);

}  // namespace dosn::overlay
