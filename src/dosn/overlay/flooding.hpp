// Unstructured overlay (paper §II-B): no index anywhere; lookups are TTL-
// limited floods over a random neighbor graph. "This kind of management has
// almost zero overhead" — zero *maintenance* overhead, paid for at query time.
//
// A search is a net::RpcEndpoint openCall(): the endpoint allocates the
// globally unique query id (deduplicated across the flood via seenQueries_),
// owns the overall deadline, and records flood.search latency/outcome
// metrics; the flood probes themselves are one-way messages.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"

namespace dosn::overlay {

class FloodingNode {
 public:
  FloodingNode(sim::Network& network, OverlayId id);

  const OverlayId& id() const { return id_; }
  sim::NodeAddr addr() const { return endpoint_.addr(); }

  /// Adds a bidirectional link (call on both nodes, or use linkNodes).
  void addNeighbor(sim::NodeAddr neighbor);
  const std::vector<sim::NodeAddr>& neighbors() const { return neighbors_; }

  /// Publishes a value locally (floods nothing; unstructured storage is
  /// owner-local).
  void publish(const OverlayId& key, util::Bytes value);

  /// Floods a query with the given TTL. The callback fires once: with the
  /// value on the first hit, or std::nullopt when `timeout` sim-time passes.
  void search(const OverlayId& key, int ttl, sim::SimTime timeout,
              std::function<void(std::optional<util::Bytes>)> done);

  /// Opts search deadlines into the adaptive estimator (net/rtt.hpp). A
  /// flood has no single destination, so completion times are keyed by this
  /// node itself — the estimator tracks whole-flood latency and the
  /// `timeout` argument becomes the pre-sample fallback. Off by default.
  void setAdaptiveTimeout(bool enabled) { adaptiveTimeout_ = enabled; }

 private:
  void onQuery(sim::NodeAddr from, util::BytesView payload);

  sim::Network& network_;
  OverlayId id_;
  net::RpcEndpoint endpoint_;
  std::vector<sim::NodeAddr> neighbors_;
  std::map<OverlayId, util::Bytes> store_;
  std::set<std::uint64_t> seenQueries_;
  bool adaptiveTimeout_ = false;
};

/// Convenience: creates a bidirectional link.
void linkNodes(FloodingNode& a, FloodingNode& b);

}  // namespace dosn::overlay
