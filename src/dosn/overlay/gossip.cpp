#include "dosn/overlay/gossip.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Interned once at static-init; per-send dispatch is by dense id.
const sim::MessageType kMsgDigest("gossip.digest");
const sim::MessageType kMsgSync("gossip.sync");
const sim::MessageType kMsgEntries("gossip.entries");

}  // namespace


namespace {

void writeId(util::Writer& w, const OverlayId& id) {
  w.raw(util::BytesView(id.bytes));
}

OverlayId readId(util::Reader& r) {
  const util::Bytes raw = r.raw(kIdBytes);
  OverlayId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

// Parses a sync body (`entries | requested keys`) without applying it, so a
// truncated/corrupted reply throws here and is dropped by the endpoint —
// the digest call stays pending and the retry path gets another shot.
void validateSync(util::BytesView body) {
  util::Reader r(body);
  const std::uint32_t entries = r.u32();
  for (std::uint32_t i = 0; i < entries; ++i) {
    readId(r);
    r.u64();
    r.bytes();
  }
  const std::uint32_t requested = r.u32();
  for (std::uint32_t i = 0; i < requested; ++i) readId(r);
}

}  // namespace

GossipNode::GossipNode(sim::Network& network, GossipConfig config)
    : network_(network),
      config_(config),
      endpoint_(network, "gossip.rpc"),
      running_(std::make_shared<bool>(false)) {
  if (config_.adaptiveTimeout) {
    net::PeerTableConfig peerConfig;
    peerConfig.retry.base = config_.retry;
    endpoint_.configurePeerTable(peerConfig);
  }
  endpoint_.onRequest(
      kMsgDigest,
      [this](sim::NodeAddr from, util::BytesView body, net::RpcId rpcId) {
        // Push-pull: reply with entries the peer is missing plus the keys we
        // want from it. The reply is sent even when both lists are empty —
        // an in-sync peer must still complete the RPC or it would retry.
        util::Reader r(body);
        std::map<OverlayId, std::uint64_t> peerVersions;
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          const OverlayId key = readId(r);
          peerVersions[key] = r.u64();
        }
        std::vector<OverlayId> toSend;
        for (const auto& [key, entry] : store_) {
          const auto it = peerVersions.find(key);
          if (it == peerVersions.end() || it->second < entry.version) {
            toSend.push_back(key);
          }
        }
        std::vector<OverlayId> toRequest;
        for (const auto& [key, version] : peerVersions) {
          const auto it = store_.find(key);
          if (it == store_.end() || it->second.version < version) {
            toRequest.push_back(key);
          }
        }
        util::Writer w;
        w.raw(encodeEntries(toSend));
        w.u32(static_cast<std::uint32_t>(toRequest.size()));
        for (const OverlayId& key : toRequest) writeId(w, key);
        endpoint_.reply(from, kMsgSync, rpcId, w.buffer());
      });
  endpoint_.addReplyChannel(kMsgSync);
  endpoint_.setReplyObserver(kMsgSync,
                             [](sim::NodeAddr, util::BytesView body) {
                               validateSync(body);
                             });
  endpoint_.onMessage(kMsgEntries,
                      [this](sim::NodeAddr, util::BytesView payload) {
                        util::Reader r(payload);
                        applyEntries(r);
                      });
}

GossipNode::~GossipNode() { stop(); }

void GossipNode::setPeers(std::vector<sim::NodeAddr> peers) {
  peers_ = std::move(peers);
}

void GossipNode::put(const OverlayId& key, util::Bytes value,
                     std::uint64_t version) {
  const auto it = store_.find(key);
  if (it != store_.end() && version <= it->second.version) return;
  Entry& entry = store_[key];
  entry.value = std::move(value);
  entry.version = version;
}

std::optional<util::Bytes> GossipNode::get(const OverlayId& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::uint64_t> GossipNode::version(const OverlayId& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second.version;
}

void GossipNode::start() {
  if (*running_) return;
  *running_ = true;
  round();
}

void GossipNode::stop() { *running_ = false; }

void GossipNode::round() {
  if (!*running_) return;
  if (!peers_.empty()) {
    for (std::size_t i = 0; i < config_.fanout; ++i) {
      const sim::NodeAddr peer =
          peers_[network_.rng().uniform(peers_.size())];
      if (peer == endpoint_.addr()) continue;
      exchangeWith(peer);
    }
  }
  std::shared_ptr<bool> running = running_;
  network_.simulator().schedule(config_.interval, [this, running] {
    if (*running) round();
  });
}

void GossipNode::exchangeWith(sim::NodeAddr peer) {
  net::CallOptions options;
  options.timeout = config_.rpcTimeout;
  options.retry = config_.retry;
  options.adaptiveTimeout = config_.adaptiveTimeout;
  endpoint_.call(
      peer, kMsgDigest, encodeDigest(), options,
      // Note no running_ gate: a stopped node still applies incoming state
      // passively, exactly as the pre-endpoint message handler did.
      [this, peer](bool ok, util::BytesView reply) {
        if (!ok) return;  // final timeout
        util::Reader r(reply);
        applyEntries(r);
        const std::uint32_t requested = r.u32();
        std::vector<OverlayId> keys;
        keys.reserve(requested);
        for (std::uint32_t i = 0; i < requested; ++i) keys.push_back(readId(r));
        if (!keys.empty()) {
          endpoint_.send(peer, kMsgEntries, encodeEntries(keys));
        }
      });
}

util::Bytes GossipNode::encodeDigest() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const auto& [key, entry] : store_) {
    writeId(w, key);
    w.u64(entry.version);
  }
  return w.take();
}

util::Bytes GossipNode::encodeEntries(const std::vector<OverlayId>& keys) const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const OverlayId& key : keys) {
    const auto it = store_.find(key);
    if (it == store_.end()) continue;
    writeId(w, key);
    w.u64(it->second.version);
    w.bytes(it->second.value);
  }
  return w.take();
}

void GossipNode::applyEntries(util::Reader& r) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const OverlayId key = readId(r);
    const std::uint64_t version = r.u64();
    util::Bytes value = r.bytes();
    const auto it = store_.find(key);
    if (it != store_.end() && version <= it->second.version) continue;
    Entry& entry = store_[key];
    entry.version = version;
    entry.value = std::move(value);
    if (updateHook_) updateHook_(key, entry.value);
  }
}

}  // namespace dosn::overlay
