#include "dosn/overlay/gossip.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

void writeId(util::Writer& w, const OverlayId& id) {
  w.raw(util::BytesView(id.bytes));
}

OverlayId readId(util::Reader& r) {
  const util::Bytes raw = r.raw(kIdBytes);
  OverlayId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

}  // namespace

GossipNode::GossipNode(sim::Network& network, GossipConfig config)
    : network_(network),
      config_(config),
      addr_(network.addNode()),
      running_(std::make_shared<bool>(false)) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    onMessage(from, msg);
  });
}

GossipNode::~GossipNode() { stop(); }

void GossipNode::setPeers(std::vector<sim::NodeAddr> peers) {
  peers_ = std::move(peers);
}

void GossipNode::put(const OverlayId& key, util::Bytes value,
                     std::uint64_t version) {
  const auto it = store_.find(key);
  if (it != store_.end() && version <= it->second.version) return;
  Entry& entry = store_[key];
  entry.value = std::move(value);
  entry.version = version;
}

std::optional<util::Bytes> GossipNode::get(const OverlayId& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::uint64_t> GossipNode::version(const OverlayId& key) const {
  const auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second.version;
}

void GossipNode::start() {
  if (*running_) return;
  *running_ = true;
  round();
}

void GossipNode::stop() { *running_ = false; }

void GossipNode::round() {
  if (!*running_) return;
  if (!peers_.empty()) {
    for (std::size_t i = 0; i < config_.fanout; ++i) {
      const sim::NodeAddr peer =
          peers_[network_.rng().uniform(peers_.size())];
      if (peer == addr_) continue;
      network_.send(addr_, peer, sim::Message{"gossip.digest", encodeDigest()});
    }
  }
  std::shared_ptr<bool> running = running_;
  network_.simulator().schedule(config_.interval, [this, running] {
    if (*running) round();
  });
}

util::Bytes GossipNode::encodeDigest() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const auto& [key, entry] : store_) {
    writeId(w, key);
    w.u64(entry.version);
  }
  return w.take();
}

util::Bytes GossipNode::encodeEntries(const std::vector<OverlayId>& keys) const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const OverlayId& key : keys) {
    const auto it = store_.find(key);
    if (it == store_.end()) continue;
    writeId(w, key);
    w.u64(it->second.version);
    w.bytes(it->second.value);
  }
  return w.take();
}

void GossipNode::applyEntries(util::Reader& r) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const OverlayId key = readId(r);
    const std::uint64_t version = r.u64();
    util::Bytes value = r.bytes();
    const auto it = store_.find(key);
    if (it != store_.end() && version <= it->second.version) continue;
    Entry& entry = store_[key];
    entry.version = version;
    entry.value = std::move(value);
    if (updateHook_) updateHook_(key, entry.value);
  }
}

void GossipNode::onMessage(sim::NodeAddr from, const sim::Message& msg) {
  try {
    util::Reader r(msg.payload);
    if (msg.type == "gossip.digest") {
      // Push-pull: reply with entries the peer is missing, and request the
      // ones we are missing.
      std::map<OverlayId, std::uint64_t> peerVersions;
      const std::uint32_t count = r.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const OverlayId key = readId(r);
        peerVersions[key] = r.u64();
      }
      std::vector<OverlayId> toSend;
      for (const auto& [key, entry] : store_) {
        const auto it = peerVersions.find(key);
        if (it == peerVersions.end() || it->second < entry.version) {
          toSend.push_back(key);
        }
      }
      std::vector<OverlayId> toRequest;
      for (const auto& [key, version] : peerVersions) {
        const auto it = store_.find(key);
        if (it == store_.end() || it->second.version < version) {
          toRequest.push_back(key);
        }
      }
      if (!toSend.empty()) {
        network_.send(addr_, from,
                      sim::Message{"gossip.entries", encodeEntries(toSend)});
      }
      if (!toRequest.empty()) {
        util::Writer w;
        w.u32(static_cast<std::uint32_t>(toRequest.size()));
        for (const OverlayId& key : toRequest) writeId(w, key);
        network_.send(addr_, from, sim::Message{"gossip.request", w.take()});
      }
    } else if (msg.type == "gossip.entries") {
      applyEntries(r);
    } else if (msg.type == "gossip.request") {
      const std::uint32_t count = r.u32();
      std::vector<OverlayId> keys;
      keys.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) keys.push_back(readId(r));
      network_.send(addr_, from,
                    sim::Message{"gossip.entries", encodeEntries(keys)});
    }
  } catch (const util::DosnError&) {
    // Malformed payload or unroutable wire-derived address: drop.
  }
}

}  // namespace dosn::overlay
