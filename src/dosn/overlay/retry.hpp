// Retry-with-exponential-backoff policy shared by the overlay RPC layers
// (Kademlia, replication). Delays are fixed functions of the attempt number —
// no randomized jitter — so retried runs stay bit-reproducible under the
// simulator's virtual clock.
#pragma once

#include <cmath>
#include <cstddef>

#include "dosn/sim/simulator.hpp"

namespace dosn::overlay {

struct RetryPolicy {
  /// Total send attempts per RPC; 1 means no retries (classic behavior).
  std::size_t attempts = 1;
  /// Backoff before the 2nd attempt; attempt n waits base * multiplier^(n-1).
  sim::SimTime backoffBase = 100 * sim::kMillisecond;
  double backoffMultiplier = 2.0;

  /// Backoff to wait after attempt `attempt` (1-based) times out.
  sim::SimTime backoff(std::size_t attempt) const {
    double delay = static_cast<double>(backoffBase);
    for (std::size_t i = 1; i < attempt; ++i) delay *= backoffMultiplier;
    return static_cast<sim::SimTime>(delay);
  }
};

}  // namespace dosn::overlay
