// Compatibility alias: the retry policies moved down a layer into net/ (they
// now belong to the shared RPC endpoint, not any single overlay). Existing
// overlay-facing code keeps spelling them overlay::RetryPolicy.
#pragma once

#include "dosn/net/retry.hpp"

namespace dosn::overlay {

using net::AdaptiveRetryPolicy;
using net::RetryPolicy;

}  // namespace dosn::overlay
