// Server federation (paper §II-B): users' data distributed over several
// servers so "none of them will have a complete global view". Each user has a
// home server; cross-server queries are forwarded by the user's own server.
//
// Cross-server queries are paired RPCs on a net::RpcEndpoint ("fed.query" ->
// "fed.reply"), giving them correlation, deadline handling, and per-RPC
// metrics from the shared substrate.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::overlay {

class FederatedServer;

/// Static directory mapping users to their home servers (like DNS for pods).
class FederationDirectory {
 public:
  void assign(const std::string& user, sim::NodeAddr server);
  std::optional<sim::NodeAddr> homeOf(const std::string& user) const;
  std::size_t userCount() const { return homes_.size(); }

  /// Users hosted per server — the "partial view" measurement for E6/T1
  /// discussion: no server sees more than its own share.
  std::map<sim::NodeAddr, std::size_t> viewSizes() const;

 private:
  std::map<std::string, sim::NodeAddr> homes_;
};

class FederatedServer {
 public:
  FederatedServer(sim::Network& network, const FederationDirectory& directory);

  sim::NodeAddr addr() const { return endpoint_.addr(); }

  /// Stores a user's datum on this (their home) server.
  void storeLocal(const std::string& user, const std::string& key,
                  util::Bytes value);

  std::size_t localUserCount() const;

  /// Client-facing query: served locally or forwarded to the home server.
  void query(const std::string& user, const std::string& key,
             sim::SimTime timeout,
             std::function<void(std::optional<util::Bytes>)> done);

  /// Opts forwarded queries into per-server adaptive timeouts (net/rtt.hpp);
  /// the `timeout` argument to query() then serves as the pre-sample
  /// fallback. Off by default.
  void setAdaptiveTimeout(bool enabled) { adaptiveTimeout_ = enabled; }

 private:
  sim::Network& network_;
  const FederationDirectory& directory_;
  net::RpcEndpoint endpoint_;
  std::map<std::string, std::map<std::string, util::Bytes>> data_;
  bool adaptiveTimeout_ = false;
};

}  // namespace dosn::overlay
