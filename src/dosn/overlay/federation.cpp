#include "dosn/overlay/federation.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

void FederationDirectory::assign(const std::string& user, sim::NodeAddr server) {
  homes_[user] = server;
}

std::optional<sim::NodeAddr> FederationDirectory::homeOf(
    const std::string& user) const {
  const auto it = homes_.find(user);
  if (it == homes_.end()) return std::nullopt;
  return it->second;
}

std::map<sim::NodeAddr, std::size_t> FederationDirectory::viewSizes() const {
  std::map<sim::NodeAddr, std::size_t> sizes;
  for (const auto& [user, server] : homes_) ++sizes[server];
  return sizes;
}

FederatedServer::FederatedServer(sim::Network& network,
                                 const FederationDirectory& directory)
    : network_(network), directory_(directory), addr_(network.addNode()) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    onMessage(from, msg);
  });
}

void FederatedServer::storeLocal(const std::string& user, const std::string& key,
                                 util::Bytes value) {
  data_[user][key] = std::move(value);
}

std::size_t FederatedServer::localUserCount() const { return data_.size(); }

void FederatedServer::query(
    const std::string& user, const std::string& key, sim::SimTime timeout,
    std::function<void(std::optional<util::Bytes>)> done) {
  const auto home = directory_.homeOf(user);
  if (!home) {
    network_.simulator().schedule(0, [done = std::move(done)] { done(std::nullopt); });
    return;
  }
  if (*home == addr_) {
    const auto userIt = data_.find(user);
    std::optional<util::Bytes> value;
    if (userIt != data_.end()) {
      const auto keyIt = userIt->second.find(key);
      if (keyIt != userIt->second.end()) value = keyIt->second;
    }
    network_.simulator().schedule(0, [done = std::move(done), value] { done(value); });
    return;
  }
  const std::uint64_t queryId =
      (static_cast<std::uint64_t>(addr_) << 32) | nextQueryId_++;
  pending_.emplace(queryId, std::move(done));
  util::Writer w;
  w.u64(queryId);
  w.str(user);
  w.str(key);
  network_.send(addr_, *home, sim::Message{"fed.query", w.take()});
  network_.simulator().schedule(timeout, [this, queryId] {
    const auto it = pending_.find(queryId);
    if (it == pending_.end()) return;
    auto callback = std::move(it->second);
    pending_.erase(it);
    callback(std::nullopt);
  });
}

void FederatedServer::onMessage(sim::NodeAddr from, const sim::Message& msg) {
  try {
    util::Reader r(msg.payload);
    if (msg.type == "fed.query") {
      const std::uint64_t queryId = r.u64();
      const std::string user = r.str();
      const std::string key = r.str();
      util::Writer w;
      w.u64(queryId);
      const auto userIt = data_.find(user);
      if (userIt != data_.end()) {
        const auto keyIt = userIt->second.find(key);
        if (keyIt != userIt->second.end()) {
          w.boolean(true);
          w.bytes(keyIt->second);
          network_.send(addr_, from, sim::Message{"fed.reply", w.take()});
          return;
        }
      }
      w.boolean(false);
      network_.send(addr_, from, sim::Message{"fed.reply", w.take()});
    } else if (msg.type == "fed.reply") {
      const std::uint64_t queryId = r.u64();
      const auto it = pending_.find(queryId);
      if (it == pending_.end()) return;
      auto callback = std::move(it->second);
      pending_.erase(it);
      if (r.boolean()) {
        callback(r.bytes());
      } else {
        callback(std::nullopt);
      }
    }
  } catch (const util::DosnError&) {
    // Malformed payload or unroutable wire-derived address: drop.
  }
}

}  // namespace dosn::overlay
