#include "dosn/overlay/federation.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Interned once at static-init; per-send dispatch is by dense id.
const sim::MessageType kMsgQuery("fed.query");
const sim::MessageType kMsgReply("fed.reply");

}  // namespace


void FederationDirectory::assign(const std::string& user, sim::NodeAddr server) {
  homes_[user] = server;
}

std::optional<sim::NodeAddr> FederationDirectory::homeOf(
    const std::string& user) const {
  const auto it = homes_.find(user);
  if (it == homes_.end()) return std::nullopt;
  return it->second;
}

std::map<sim::NodeAddr, std::size_t> FederationDirectory::viewSizes() const {
  std::map<sim::NodeAddr, std::size_t> sizes;
  for (const auto& [user, server] : homes_) ++sizes[server];
  return sizes;
}

FederatedServer::FederatedServer(sim::Network& network,
                                 const FederationDirectory& directory)
    : network_(network), directory_(directory), endpoint_(network, "fed.rpc") {
  endpoint_.onRequest(
      kMsgQuery,
      [this](sim::NodeAddr from, util::BytesView body, net::RpcId rpcId) {
        util::Reader r(body);
        const std::string user = r.str();
        const std::string key = r.str();
        util::Writer w;
        const auto userIt = data_.find(user);
        if (userIt != data_.end()) {
          const auto keyIt = userIt->second.find(key);
          if (keyIt != userIt->second.end()) {
            w.boolean(true);
            w.bytes(keyIt->second);
            endpoint_.reply(from, kMsgReply, rpcId, w.buffer());
            return;
          }
        }
        w.boolean(false);
        endpoint_.reply(from, kMsgReply, rpcId, w.buffer());
      });
  // The observer validates the found-flag and value so a corrupted reply is
  // dropped (the query then resolves nullopt at its deadline) instead of
  // silently losing the caller's callback as the pre-endpoint code did.
  endpoint_.addReplyChannel(kMsgReply);
  endpoint_.setReplyObserver(kMsgReply, [](sim::NodeAddr, util::BytesView body) {
    util::Reader r(body);
    if (r.boolean()) r.bytes();
  });
}

void FederatedServer::storeLocal(const std::string& user, const std::string& key,
                                 util::Bytes value) {
  data_[user][key] = std::move(value);
}

std::size_t FederatedServer::localUserCount() const { return data_.size(); }

void FederatedServer::query(
    const std::string& user, const std::string& key, sim::SimTime timeout,
    std::function<void(std::optional<util::Bytes>)> done) {
  const auto home = directory_.homeOf(user);
  if (!home) {
    network_.simulator().schedule(0, [done = std::move(done)] { done(std::nullopt); });
    return;
  }
  if (*home == endpoint_.addr()) {
    const auto userIt = data_.find(user);
    std::optional<util::Bytes> value;
    if (userIt != data_.end()) {
      const auto keyIt = userIt->second.find(key);
      if (keyIt != userIt->second.end()) value = keyIt->second;
    }
    network_.simulator().schedule(0, [done = std::move(done), value] { done(value); });
    return;
  }
  util::Writer w;
  w.str(user);
  w.str(key);
  net::CallOptions options;
  options.timeout = timeout;
  options.adaptiveTimeout = adaptiveTimeout_;
  endpoint_.call(*home, kMsgQuery, w.buffer(), options,
                 [done = std::move(done)](bool ok, util::BytesView reply) {
                   if (!ok) {
                     done(std::nullopt);
                     return;
                   }
                   util::Reader r(reply);
                   if (r.boolean()) {
                     done(r.bytes());
                   } else {
                     done(std::nullopt);
                   }
                 });
}

}  // namespace dosn::overlay
