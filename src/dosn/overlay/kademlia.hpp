// Kademlia-style DHT: the structured control overlay the paper's §II-B says
// "most of the recent DOSNs use ... distributed hash tables (DHTs) for the
// lookup service" (PrPl, PeerSoN, Safebook, Cachet).
//
// Implements k-bucket routing tables, iterative FIND_NODE / FIND_VALUE
// lookups with alpha-way parallelism, STORE on the k closest nodes, and RPC
// timeouts — all asynchronously on the discrete-event simulator. Request/
// response plumbing (rpcId correlation, retry/backoff, per-RPC metrics) is
// delegated to the shared net::RpcEndpoint.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/overlay/node_id.hpp"
#include "dosn/overlay/placement.hpp"
#include "dosn/overlay/retry.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/store/block_store.hpp"
#include "dosn/util/codec.hpp"

namespace dosn::overlay {

struct Contact {
  OverlayId id;
  sim::NodeAddr addr = sim::kNoAddr;

  bool operator==(const Contact& o) const { return id == o.id && addr == o.addr; }
};

struct KademliaConfig {
  std::size_t k = 20;       // bucket size / lookup width
  std::size_t alpha = 3;    // lookup parallelism
  sim::SimTime rpcTimeout = 500 * sim::kMillisecond;
  /// Nodes a store() places replicas on; 0 means "k" (classic Kademlia).
  /// Letting it differ from k keeps routing healthy while sweeping the
  /// replication factor (bench_microblog).
  std::size_t storeWidth = 0;
  /// Per-RPC retry with exponential backoff; default attempts=1 disables
  /// retries, preserving the classic single-shot timeout behavior.
  RetryPolicy retry;
  /// Optional shared adaptive retry budget (not owned; must outlive the
  /// node). When set it overrides `retry` and is fed every attempt outcome,
  /// sizing the budget from the fleet's observed timeout rate.
  net::AdaptiveRetryPolicy* adaptiveRetry = nullptr;
  /// Per-destination adaptive timeouts (net/rtt.hpp): every RPC takes its
  /// timeout from an RFC 6298 estimator and its retry budget from an
  /// AdaptiveRetryPolicy keyed by the destination, with `rpcTimeout` as the
  /// pre-sample fallback and `retry` as the per-destination budget base.
  /// Off by default: the classic fixed-timeout behavior is untouched.
  bool adaptiveTimeout = false;
  /// Optional placement policy for store(): when set, the `width` targets
  /// are chosen by policy from the XOR-closest contacts the lookup found
  /// (e.g. SocialPolicy prefers the owner's friends among them) instead of
  /// taking the closest prefix. Borrowed, not owned; must outlive the node.
  /// Null keeps the classic closest-prefix behavior byte for byte.
  PlacementPolicy* placement = nullptr;
  /// Factory for the node's local value store (DESIGN.md §3e). Null keeps
  /// the default in-memory backend; supply one to run replica nodes on a
  /// durable/encrypting stack, e.g. Crypt(Cache(Async(File))) via
  /// store::makeStack. Store-layer failures never cross the wire protocol:
  /// a put that throws is swallowed (the classic handler acked blindly) and
  /// a corrupt block reads as absent.
  std::function<std::unique_ptr<store::BlockStore>()> makeStore;
};

/// LRU k-bucket routing table.
class RoutingTable {
 public:
  RoutingTable(OverlayId self, std::size_t k);

  /// Records that a contact was seen (most-recently-seen goes last; a full
  /// bucket evicts its least-recently-seen entry).
  void observe(const Contact& contact);

  /// Up to `count` contacts closest to `target`.
  std::vector<Contact> closest(const OverlayId& target, std::size_t count) const;

  std::size_t size() const;

 private:
  OverlayId self_;
  std::size_t k_;
  std::array<std::vector<Contact>, kIdBits> buckets_;
};

struct LookupResult {
  std::optional<util::Bytes> value;   // set for value lookups that hit
  std::vector<Contact> closest;       // k closest contacts found
  std::size_t messagesSent = 0;       // RPCs issued by this lookup
  std::size_t hops = 0;               // query rounds until termination
};

class KademliaNode {
 public:
  KademliaNode(sim::Network& network, OverlayId id, KademliaConfig config = {});

  const OverlayId& id() const { return id_; }
  sim::NodeAddr addr() const { return endpoint_.addr(); }
  const RoutingTable& routingTable() const { return table_; }
  net::RpcEndpoint& endpoint() { return endpoint_; }

  /// Seeds the routing table and performs a self-lookup.
  void bootstrap(const Contact& seed, std::function<void()> done = {});

  /// Stores key->value on the k closest nodes to the key.
  void store(const OverlayId& key, util::Bytes value,
             std::function<void(bool ok)> done = {});

  /// Owner-attributed store: identical to store(), but hands the owning
  /// user to the configured placement policy so socially-aware policies can
  /// rank the lookup's candidates. With no policy configured this is
  /// exactly store(). (A distinct name, not an overload: a brace-init
  /// callback would be ambiguous between UserId and std::function.)
  void storeAs(const OverlayId& key, util::Bytes value, social::UserId owner,
               std::function<void(bool ok)> done = {});

  /// Iterative value lookup.
  void findValue(const OverlayId& key,
                 std::function<void(LookupResult)> done);

  /// Iterative node lookup (no value retrieval).
  void findNode(const OverlayId& target,
                std::function<void(LookupResult)> done);

  /// The node's local block store (pluggable; default MemoryStore).
  const store::BlockStore& localStore() const { return *store_; }
  store::BlockStore& blockStore() { return *store_; }

  /// Re-joins after churn downtime: data survives locally, the routing table
  /// is refreshed via a self-lookup through the seed.
  void rejoin(const Contact& seed);

  // RPC robustness stats (also mirrored into the network's Metrics, if
  // attached, as `kad.rpc.retry` / `kad.rpc.fail`).
  std::uint64_t rpcRetries() const { return endpoint_.retries(); }
  std::uint64_t rpcFailures() const { return endpoint_.failures(); }

 private:
  struct Lookup;

  void setupRpcHandlers();
  void storeImpl(const OverlayId& key, util::Bytes value,
                 std::optional<social::UserId> owner,
                 std::function<void(bool ok)> done);
  void sendRpc(const Contact& to, const std::string& type, util::Bytes payload,
               std::function<void(bool ok, util::BytesView reply)> onReply);
  void startLookup(const OverlayId& target, bool wantValue,
                   std::function<void(LookupResult)> done);
  void lookupStep(const std::shared_ptr<Lookup>& lookup);
  void finishLookup(const std::shared_ptr<Lookup>& lookup);

  static util::Bytes encodeContacts(const std::vector<Contact>& contacts);
  static std::vector<Contact> decodeContacts(util::Reader& r);

  // Store-layer failures stay local (see KademliaConfig::makeStore).
  void localPut(const OverlayId& key, util::BytesView value);
  std::optional<util::Bytes> localGet(const OverlayId& key);

  sim::Network& network_;
  OverlayId id_;
  KademliaConfig config_;
  net::RpcEndpoint endpoint_;
  RoutingTable table_;
  std::unique_ptr<store::BlockStore> store_;
};

}  // namespace dosn::overlay
