// Gossip / epidemic dissemination (paper §II-B "flooding or gossip-based
// communication"; Cachet's "gossip-based caching"). Periodic push-pull
// anti-entropy of a versioned key-value cache over random peers.
//
// A round's digest exchange is a paired RPC on the shared net::RpcEndpoint
// ("gossip.digest" -> "gossip.sync"), which buys the anti-entropy path what
// every other overlay already had: correlation, per-RPC metrics, and —
// new for gossip — timeout-driven retry with backoff, so a dropped digest
// or sync no longer silently wastes the whole round.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/overlay/node_id.hpp"
#include "dosn/overlay/retry.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/util/codec.hpp"

namespace dosn::overlay {

struct GossipConfig {
  sim::SimTime interval = 1 * sim::kSecond;  // anti-entropy round period
  std::size_t fanout = 1;                    // peers contacted per round
  /// Deadline for one digest/sync exchange.
  sim::SimTime rpcTimeout = 500 * sim::kMillisecond;
  /// Retry budget for the digest RPC; default attempts=1 keeps the classic
  /// fire-and-forget round economics.
  RetryPolicy retry;
  /// Per-destination adaptive timeouts for the digest RPC (net/rtt.hpp):
  /// `rpcTimeout` becomes the pre-sample fallback and `retry` the
  /// per-destination budget base. Off by default.
  bool adaptiveTimeout = false;
};

class GossipNode {
 public:
  GossipNode(sim::Network& network, GossipConfig config = {});
  ~GossipNode();

  GossipNode(const GossipNode&) = delete;
  GossipNode& operator=(const GossipNode&) = delete;

  sim::NodeAddr addr() const { return endpoint_.addr(); }

  /// Peers gossiped with (typically the whole group or a random subset).
  void setPeers(std::vector<sim::NodeAddr> peers);

  /// Inserts/updates an entry; newer versions win everywhere.
  void put(const OverlayId& key, util::Bytes value, std::uint64_t version);

  /// Local cache lookup only (no network).
  std::optional<util::Bytes> get(const OverlayId& key) const;
  std::optional<std::uint64_t> version(const OverlayId& key) const;
  std::size_t cacheSize() const { return store_.size(); }

  /// Begins periodic anti-entropy rounds.
  void start();
  void stop();

  /// Hook invoked when a new/updated entry arrives via gossip.
  void onUpdate(std::function<void(const OverlayId&, const util::Bytes&)> hook) {
    updateHook_ = std::move(hook);
  }

  /// Digest RPCs retried / given up on (from the shared endpoint).
  std::uint64_t rpcRetries() const { return endpoint_.retries(); }
  std::uint64_t rpcFailures() const { return endpoint_.failures(); }

 private:
  struct Entry {
    util::Bytes value;
    std::uint64_t version = 0;
  };

  void round();
  void exchangeWith(sim::NodeAddr peer);
  util::Bytes encodeDigest() const;
  util::Bytes encodeEntries(const std::vector<OverlayId>& keys) const;
  void applyEntries(util::Reader& r);

  sim::Network& network_;
  GossipConfig config_;
  net::RpcEndpoint endpoint_;
  std::vector<sim::NodeAddr> peers_;
  std::map<OverlayId, Entry> store_;
  std::shared_ptr<bool> running_;
  std::function<void(const OverlayId&, const util::Bytes&)> updateHook_;
};

}  // namespace dosn::overlay
