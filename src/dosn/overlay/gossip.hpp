// Gossip / epidemic dissemination (paper §II-B "flooding or gossip-based
// communication"; Cachet's "gossip-based caching"). Periodic push-pull
// anti-entropy of a versioned key-value cache over random peers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/util/codec.hpp"

namespace dosn::overlay {

struct GossipConfig {
  sim::SimTime interval = 1 * sim::kSecond;  // anti-entropy round period
  std::size_t fanout = 1;                    // peers contacted per round
};

class GossipNode {
 public:
  GossipNode(sim::Network& network, GossipConfig config = {});
  ~GossipNode();

  GossipNode(const GossipNode&) = delete;
  GossipNode& operator=(const GossipNode&) = delete;

  sim::NodeAddr addr() const { return addr_; }

  /// Peers gossiped with (typically the whole group or a random subset).
  void setPeers(std::vector<sim::NodeAddr> peers);

  /// Inserts/updates an entry; newer versions win everywhere.
  void put(const OverlayId& key, util::Bytes value, std::uint64_t version);

  /// Local cache lookup only (no network).
  std::optional<util::Bytes> get(const OverlayId& key) const;
  std::optional<std::uint64_t> version(const OverlayId& key) const;
  std::size_t cacheSize() const { return store_.size(); }

  /// Begins periodic anti-entropy rounds.
  void start();
  void stop();

  /// Hook invoked when a new/updated entry arrives via gossip.
  void onUpdate(std::function<void(const OverlayId&, const util::Bytes&)> hook) {
    updateHook_ = std::move(hook);
  }

 private:
  struct Entry {
    util::Bytes value;
    std::uint64_t version = 0;
  };

  void onMessage(sim::NodeAddr from, const sim::Message& msg);
  void round();
  util::Bytes encodeDigest() const;
  util::Bytes encodeEntries(const std::vector<OverlayId>& keys) const;
  void applyEntries(util::Reader& r);

  sim::Network& network_;
  GossipConfig config_;
  sim::NodeAddr addr_;
  std::vector<sim::NodeAddr> peers_;
  std::map<OverlayId, Entry> store_;
  std::shared_ptr<bool> running_;
  std::function<void(const OverlayId&, const util::Bytes&)> updateHook_;
};

}  // namespace dosn::overlay
