#include "dosn/overlay/flooding.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Query payload: u64 queryId, u64 originAddr, i32 ttl, raw key(20).
util::Bytes encodeQuery(std::uint64_t queryId, sim::NodeAddr origin, int ttl,
                        const OverlayId& key) {
  util::Writer w;
  w.u64(queryId);
  w.u64(origin);
  w.u32(static_cast<std::uint32_t>(ttl));
  w.raw(util::BytesView(key.bytes));
  return w.take();
}

}  // namespace

FloodingNode::FloodingNode(sim::Network& network, OverlayId id)
    : network_(network), id_(id), addr_(network.addNode()) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    onMessage(from, msg);
  });
}

void FloodingNode::addNeighbor(sim::NodeAddr neighbor) {
  for (const sim::NodeAddr n : neighbors_) {
    if (n == neighbor) return;
  }
  neighbors_.push_back(neighbor);
}

void linkNodes(FloodingNode& a, FloodingNode& b) {
  a.addNeighbor(b.addr());
  b.addNeighbor(a.addr());
}

void FloodingNode::publish(const OverlayId& key, util::Bytes value) {
  store_[key] = std::move(value);
}

void FloodingNode::search(
    const OverlayId& key, int ttl, sim::SimTime timeout,
    std::function<void(std::optional<util::Bytes>)> done) {
  // Local hit short-circuits.
  const auto it = store_.find(key);
  if (it != store_.end()) {
    network_.simulator().schedule(0, [done = std::move(done), v = it->second] {
      done(v);
    });
    return;
  }
  const std::uint64_t queryId =
      (static_cast<std::uint64_t>(addr_) << 32) | nextQueryId_++;
  seenQueries_.insert(queryId);
  pendingSearches_.emplace(queryId, std::move(done));

  const util::Bytes payload = encodeQuery(queryId, addr_, ttl, key);
  for (const sim::NodeAddr n : neighbors_) {
    network_.send(addr_, n, sim::Message{"flood.query", payload});
  }
  network_.simulator().schedule(timeout, [this, queryId] {
    const auto pending = pendingSearches_.find(queryId);
    if (pending == pendingSearches_.end()) return;
    auto callback = std::move(pending->second);
    pendingSearches_.erase(pending);
    callback(std::nullopt);
  });
}

void FloodingNode::onMessage(sim::NodeAddr from, const sim::Message& msg) {
  try {
    util::Reader r(msg.payload);
    if (msg.type == "flood.query") {
      const std::uint64_t queryId = r.u64();
      const sim::NodeAddr origin = r.u64();
      const int ttl = static_cast<int>(r.u32());
      const util::Bytes keyRaw = r.raw(kIdBytes);
      OverlayId key;
      std::copy(keyRaw.begin(), keyRaw.end(), key.bytes.begin());

      if (!seenQueries_.insert(queryId).second) return;  // duplicate

      const auto it = store_.find(key);
      if (it != store_.end()) {
        util::Writer hit;
        hit.u64(queryId);
        hit.bytes(it->second);
        network_.send(addr_, origin, sim::Message{"flood.hit", hit.take()});
        return;
      }
      if (ttl <= 1) return;
      const util::Bytes forward = encodeQuery(queryId, origin, ttl - 1, key);
      for (const sim::NodeAddr n : neighbors_) {
        if (n == from) continue;
        network_.send(addr_, n, sim::Message{"flood.query", forward});
      }
    } else if (msg.type == "flood.hit") {
      const std::uint64_t queryId = r.u64();
      const auto pending = pendingSearches_.find(queryId);
      if (pending == pendingSearches_.end()) return;  // late duplicate
      auto callback = std::move(pending->second);
      pendingSearches_.erase(pending);
      callback(r.bytes());
    }
  } catch (const util::DosnError&) {
    // Malformed payload or unroutable wire-derived address: drop.
  }
}

}  // namespace dosn::overlay
