#include "dosn/overlay/flooding.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Interned once at static-init; per-send dispatch is by dense id.
const sim::MessageType kMsgQuery("flood.query");
const sim::MessageType kMsgHit("flood.hit");
const sim::MessageType kOpSearch("flood.search");

}  // namespace


namespace {

// Query payload: u64 queryId, u64 originAddr, i32 ttl, raw key(20).
util::Bytes encodeQuery(std::uint64_t queryId, sim::NodeAddr origin, int ttl,
                        const OverlayId& key) {
  util::Writer w;
  w.u64(queryId);
  w.u64(origin);
  w.u32(static_cast<std::uint32_t>(ttl));
  w.raw(util::BytesView(key.bytes));
  return w.take();
}

}  // namespace

FloodingNode::FloodingNode(sim::Network& network, OverlayId id)
    : network_(network), id_(id), endpoint_(network, "flood.rpc") {
  endpoint_.onMessage(kMsgQuery,
                      [this](sim::NodeAddr from, util::BytesView payload) {
                        onQuery(from, payload);
                      });
  // A hit carries `u64 queryId | bytes value`; the observer validates the
  // value field so a corrupted hit is dropped and the search keeps waiting
  // for another replica (or the deadline).
  endpoint_.addReplyChannel(kMsgHit);
  endpoint_.setReplyObserver(kMsgHit,
                             [](sim::NodeAddr, util::BytesView body) {
                               util::Reader r(body);
                               r.bytes();
                             });
}

void FloodingNode::addNeighbor(sim::NodeAddr neighbor) {
  for (const sim::NodeAddr n : neighbors_) {
    if (n == neighbor) return;
  }
  neighbors_.push_back(neighbor);
}

void linkNodes(FloodingNode& a, FloodingNode& b) {
  a.addNeighbor(b.addr());
  b.addNeighbor(a.addr());
}

void FloodingNode::publish(const OverlayId& key, util::Bytes value) {
  store_[key] = std::move(value);
}

void FloodingNode::search(
    const OverlayId& key, int ttl, sim::SimTime timeout,
    std::function<void(std::optional<util::Bytes>)> done) {
  // Local hit short-circuits.
  const auto it = store_.find(key);
  if (it != store_.end()) {
    network_.simulator().schedule(0, [done = std::move(done), v = it->second] {
      done(v);
    });
    return;
  }
  net::OpenCallOptions options;
  options.timeout = timeout;
  options.adaptiveTimeout = adaptiveTimeout_;
  options.peer = endpoint_.addr();  // flood-wide op, keyed by the origin
  const net::RpcId queryId = endpoint_.openCall(
      kOpSearch, options, {},
      [done = std::move(done)](bool ok, util::BytesView reply) {
        if (!ok) {
          done(std::nullopt);
          return;
        }
        util::Reader r(reply);
        done(r.bytes());
      });
  seenQueries_.insert(queryId);

  const util::Bytes payload = encodeQuery(queryId, endpoint_.addr(), ttl, key);
  for (const sim::NodeAddr n : neighbors_) {
    endpoint_.send(n, kMsgQuery, payload);
  }
}

void FloodingNode::onQuery(sim::NodeAddr from, util::BytesView payload) {
  util::Reader r(payload);
  const std::uint64_t queryId = r.u64();
  const sim::NodeAddr origin = r.u64();
  const int ttl = static_cast<int>(r.u32());
  const util::Bytes keyRaw = r.raw(kIdBytes);
  OverlayId key;
  std::copy(keyRaw.begin(), keyRaw.end(), key.bytes.begin());

  if (!seenQueries_.insert(queryId).second) return;  // duplicate

  const auto it = store_.find(key);
  if (it != store_.end()) {
    util::Writer hit;
    hit.bytes(it->second);
    endpoint_.reply(origin, kMsgHit, queryId, hit.buffer());
    return;
  }
  if (ttl <= 1) return;
  const util::Bytes forward = encodeQuery(queryId, origin, ttl - 1, key);
  for (const sim::NodeAddr n : neighbors_) {
    if (n == from) continue;
    endpoint_.send(n, kMsgQuery, forward);
  }
}

}  // namespace dosn::overlay
