#include "dosn/overlay/node_id.hpp"

#include "dosn/crypto/sha256.hpp"

namespace dosn::overlay {

OverlayId OverlayId::random(util::Rng& rng) {
  OverlayId id;
  rng.fill(id.bytes.data(), id.bytes.size());
  return id;
}

OverlayId OverlayId::hash(util::BytesView data) {
  const crypto::Digest digest = crypto::sha256(data);
  OverlayId id;
  std::copy(digest.begin(), digest.begin() + kIdBytes, id.bytes.begin());
  return id;
}

OverlayId OverlayId::hash(std::string_view text) {
  return hash(util::toBytes(text));
}

std::string OverlayId::toHex() const {
  return util::toHex(util::BytesView(bytes));
}

OverlayId xorDistance(const OverlayId& a, const OverlayId& b) {
  OverlayId out;
  for (std::size_t i = 0; i < kIdBytes; ++i) out.bytes[i] = a.bytes[i] ^ b.bytes[i];
  return out;
}

int bucketIndex(const OverlayId& a, const OverlayId& b) {
  for (std::size_t i = 0; i < kIdBytes; ++i) {
    const std::uint8_t d = a.bytes[i] ^ b.bytes[i];
    if (d != 0) {
      // Highest set bit within this byte.
      int bit = 7;
      while (((d >> bit) & 1) == 0) --bit;
      return static_cast<int>((kIdBytes - 1 - i) * 8) + bit;
    }
  }
  return -1;
}

bool closerTo(const OverlayId& target, const OverlayId& a, const OverlayId& b) {
  for (std::size_t i = 0; i < kIdBytes; ++i) {
    const std::uint8_t da = a.bytes[i] ^ target.bytes[i];
    const std::uint8_t db = b.bytes[i] ^ target.bytes[i];
    if (da != db) return da < db;
  }
  return false;
}

}  // namespace dosn::overlay
