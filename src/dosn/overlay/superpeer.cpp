#include "dosn/overlay/superpeer.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Interned once at static-init; per-send dispatch is by dense id.
const sim::MessageType kMsgRegister("sp.register");
const sim::MessageType kMsgQuery("sp.query");
const sim::MessageType kMsgPeerQuery("sp.peer_query");
const sim::MessageType kMsgOwner("sp.owner");
const sim::MessageType kMsgFetch("sp.fetch");
const sim::MessageType kMsgValue("sp.value");
const sim::MessageType kOpSearch("sp.search");

}  // namespace


namespace {

void writeId(util::Writer& w, const OverlayId& id) {
  w.raw(util::BytesView(id.bytes));
}

OverlayId readId(util::Reader& r) {
  const util::Bytes raw = r.raw(kIdBytes);
  OverlayId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

}  // namespace

SuperPeer::SuperPeer(sim::Network& network) : endpoint_(network, "sp.rpc") {
  endpoint_.onMessage(
      kMsgRegister, [this](sim::NodeAddr from, util::BytesView payload) {
        util::Reader r(payload);
        index_[readId(r)] = from;
      });
  endpoint_.onMessage(
      kMsgQuery, [this](sim::NodeAddr, util::BytesView payload) {
        // From a leaf: answer locally or fan out to the other super peers.
        util::Reader r(payload);
        const std::uint64_t queryId = r.u64();
        const sim::NodeAddr origin = r.u64();
        const OverlayId key = readId(r);
        const auto it = index_.find(key);
        if (it != index_.end()) {
          util::Writer w;
          w.u64(it->second);
          endpoint_.reply(origin, kMsgOwner, queryId, w.buffer());
          return;
        }
        util::Writer w;
        w.u64(queryId);
        w.u64(origin);
        writeId(w, key);
        const util::Bytes payload2 = w.take();
        for (const sim::NodeAddr peer : peers_) {
          endpoint_.send(peer, kMsgPeerQuery, payload2);
        }
      });
  endpoint_.onMessage(
      kMsgPeerQuery, [this](sim::NodeAddr, util::BytesView payload) {
        // From another super peer: answer the origin directly on a hit.
        util::Reader r(payload);
        const std::uint64_t queryId = r.u64();
        const sim::NodeAddr origin = r.u64();
        const OverlayId key = readId(r);
        const auto it = index_.find(key);
        if (it != index_.end()) {
          util::Writer w;
          w.u64(it->second);
          endpoint_.reply(origin, kMsgOwner, queryId, w.buffer());
        }
      });
}

void SuperPeer::setPeers(std::vector<sim::NodeAddr> otherSuperPeers) {
  peers_ = std::move(otherSuperPeers);
}

LeafPeer::LeafPeer(sim::Network& network, sim::NodeAddr superPeer)
    : network_(network), endpoint_(network, "sp.rpc"), superPeer_(superPeer) {
  endpoint_.onMessage(
      kMsgOwner, [this](sim::NodeAddr, util::BytesView payload) {
        // The index gave us the owner; fetch the value from it. The searched
        // key rides on the pending call's tag.
        util::Reader r(payload);
        const std::uint64_t queryId = r.u64();
        const sim::NodeAddr owner = r.u64();
        const util::Bytes* key = endpoint_.tag(queryId);
        if (!key) return;  // timed out or a duplicate owner answer
        util::Writer w;
        w.u64(queryId);
        w.u64(endpoint_.addr());
        w.raw(*key);
        endpoint_.send(owner, kMsgFetch, w.take());
      });
  endpoint_.onMessage(
      kMsgFetch, [this](sim::NodeAddr, util::BytesView payload) {
        // Another leaf wants one of our values.
        util::Reader r(payload);
        const std::uint64_t queryId = r.u64();
        const sim::NodeAddr origin = r.u64();
        const OverlayId key = readId(r);
        const auto it = store_.find(key);
        if (it == store_.end()) return;
        util::Writer w;
        w.bytes(it->second);
        endpoint_.reply(origin, kMsgValue, queryId, w.buffer());
      });
  // The observer validates the value field, so a corrupted sp.value leaves
  // the search pending until the deadline instead of completing it.
  endpoint_.addReplyChannel(kMsgValue);
  endpoint_.setReplyObserver(kMsgValue, [](sim::NodeAddr, util::BytesView body) {
    util::Reader r(body);
    r.bytes();
  });
}

void LeafPeer::publish(const OverlayId& key, util::Bytes value) {
  store_[key] = std::move(value);
  util::Writer w;
  writeId(w, key);
  endpoint_.send(superPeer_, kMsgRegister, w.take());
}

void LeafPeer::search(const OverlayId& key, sim::SimTime timeout,
                      std::function<void(std::optional<util::Bytes>)> done) {
  const auto local = store_.find(key);
  if (local != store_.end()) {
    network_.simulator().schedule(0, [done = std::move(done), v = local->second] {
      done(v);
    });
    return;
  }
  net::OpenCallOptions options;
  options.timeout = timeout;
  options.adaptiveTimeout = adaptiveTimeout_;
  options.peer = superPeer_;  // whole-chain time, keyed by the first hop
  const net::RpcId queryId = endpoint_.openCall(
      kOpSearch, options, util::Bytes(key.bytes.begin(), key.bytes.end()),
      [done = std::move(done)](bool ok, util::BytesView reply) {
        if (!ok) {
          done(std::nullopt);
          return;
        }
        util::Reader r(reply);
        done(r.bytes());
      });
  util::Writer w;
  w.u64(queryId);
  w.u64(endpoint_.addr());
  writeId(w, key);
  endpoint_.send(superPeer_, kMsgQuery, w.take());
}

}  // namespace dosn::overlay
