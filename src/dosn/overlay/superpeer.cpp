#include "dosn/overlay/superpeer.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

void writeId(util::Writer& w, const OverlayId& id) {
  w.raw(util::BytesView(id.bytes));
}

OverlayId readId(util::Reader& r) {
  const util::Bytes raw = r.raw(kIdBytes);
  OverlayId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

}  // namespace

SuperPeer::SuperPeer(sim::Network& network)
    : network_(network), addr_(network.addNode()) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    onMessage(from, msg);
  });
}

void SuperPeer::setPeers(std::vector<sim::NodeAddr> otherSuperPeers) {
  peers_ = std::move(otherSuperPeers);
}

void SuperPeer::onMessage(sim::NodeAddr from, const sim::Message& msg) {
  try {
    util::Reader r(msg.payload);
    if (msg.type == "sp.register") {
      const OverlayId key = readId(r);
      index_[key] = from;
    } else if (msg.type == "sp.query") {
      // From a leaf: answer locally or fan out to the other super peers.
      const std::uint64_t queryId = r.u64();
      const sim::NodeAddr origin = r.u64();
      const OverlayId key = readId(r);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        util::Writer w;
        w.u64(queryId);
        w.u64(it->second);
        network_.send(addr_, origin, sim::Message{"sp.owner", w.take()});
        return;
      }
      util::Writer w;
      w.u64(queryId);
      w.u64(origin);
      writeId(w, key);
      const util::Bytes payload = w.take();
      for (const sim::NodeAddr peer : peers_) {
        network_.send(addr_, peer, sim::Message{"sp.peer_query", payload});
      }
    } else if (msg.type == "sp.peer_query") {
      // From another super peer: answer the origin directly on a hit.
      const std::uint64_t queryId = r.u64();
      const sim::NodeAddr origin = r.u64();
      const OverlayId key = readId(r);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        util::Writer w;
        w.u64(queryId);
        w.u64(it->second);
        network_.send(addr_, origin, sim::Message{"sp.owner", w.take()});
      }
    }
  } catch (const util::DosnError&) {
    // Malformed payload or unroutable wire-derived address: drop.
  }
}

LeafPeer::LeafPeer(sim::Network& network, sim::NodeAddr superPeer)
    : network_(network), addr_(network.addNode()), superPeer_(superPeer) {
  network_.setHandler(addr_, [this](sim::NodeAddr from, const sim::Message& msg) {
    onMessage(from, msg);
  });
}

void LeafPeer::publish(const OverlayId& key, util::Bytes value) {
  store_[key] = std::move(value);
  util::Writer w;
  writeId(w, key);
  network_.send(addr_, superPeer_, sim::Message{"sp.register", w.take()});
}

void LeafPeer::search(const OverlayId& key, sim::SimTime timeout,
                      std::function<void(std::optional<util::Bytes>)> done) {
  const auto local = store_.find(key);
  if (local != store_.end()) {
    network_.simulator().schedule(0, [done = std::move(done), v = local->second] {
      done(v);
    });
    return;
  }
  const std::uint64_t queryId =
      (static_cast<std::uint64_t>(addr_) << 32) | nextQueryId_++;
  pending_.emplace(queryId, PendingQuery{key, std::move(done)});
  util::Writer w;
  w.u64(queryId);
  w.u64(addr_);
  writeId(w, key);
  network_.send(addr_, superPeer_, sim::Message{"sp.query", w.take()});
  network_.simulator().schedule(timeout, [this, queryId] {
    const auto it = pending_.find(queryId);
    if (it == pending_.end()) return;
    auto callback = std::move(it->second.done);
    pending_.erase(it);
    callback(std::nullopt);
  });
}

void LeafPeer::onMessage(sim::NodeAddr from, const sim::Message& msg) {
  (void)from;
  try {
    util::Reader r(msg.payload);
    if (msg.type == "sp.owner") {
      // The index gave us the owner; fetch the value from it.
      const std::uint64_t queryId = r.u64();
      const sim::NodeAddr owner = r.u64();
      const auto it = pending_.find(queryId);
      if (it == pending_.end()) return;
      util::Writer w;
      w.u64(queryId);
      w.u64(addr_);
      writeId(w, it->second.key);
      network_.send(addr_, owner, sim::Message{"sp.fetch", w.take()});
    } else if (msg.type == "sp.fetch") {
      // Another leaf wants one of our values.
      const std::uint64_t queryId = r.u64();
      const sim::NodeAddr origin = r.u64();
      const OverlayId key = readId(r);
      const auto it = store_.find(key);
      if (it == store_.end()) return;
      util::Writer w;
      w.u64(queryId);
      w.bytes(it->second);
      network_.send(addr_, origin, sim::Message{"sp.value", w.take()});
    } else if (msg.type == "sp.value") {
      const std::uint64_t queryId = r.u64();
      const auto it = pending_.find(queryId);
      if (it == pending_.end()) return;
      auto callback = std::move(it->second.done);
      pending_.erase(it);
      callback(r.bytes());
    }
  } catch (const util::DosnError&) {
    // Malformed payload or unroutable wire-derived address: drop.
  }
}

}  // namespace dosn::overlay
