// Replica placement and availability tracking — the paper's §I motivation:
// "replication and caching are proven techniques to ensure availability",
// at the price of replicas becoming "another kind of service provider in a
// small scale" (the survey's central observation).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"

namespace dosn::overlay {

/// Tracks which nodes hold a replica of each item and answers availability
/// queries against the network's live/offline state.
class ReplicationManager {
 public:
  explicit ReplicationManager(sim::Network& network);

  /// Places `replicas` copies of the item on distinct nodes drawn from
  /// `candidates` (uniformly at random). Returns the chosen replica set.
  std::vector<sim::NodeAddr> place(const OverlayId& item, std::size_t replicas,
                                   const std::vector<sim::NodeAddr>& candidates);

  /// Maintenance pass: for every item whose ONLINE replica count fell below
  /// its placement target, recruits additional online candidates (and drops
  /// nothing — offline replicas may come back). Returns replicas added.
  /// This is the re-replication loop DOSN designs run to survive permanent
  /// departures, traded against extra storage/traffic.
  std::size_t repair(const std::vector<sim::NodeAddr>& candidates);

  /// Item is available iff at least one replica node is online.
  bool available(const OverlayId& item) const;

  /// Number of currently online replicas.
  std::size_t onlineReplicas(const OverlayId& item) const;

  const std::set<sim::NodeAddr>& replicasOf(const OverlayId& item) const;

  /// How many distinct items a node can observe (it stores their replicas) —
  /// the "small-scale service provider" view-size metric.
  std::map<sim::NodeAddr, std::size_t> observerViewSizes() const;

  std::size_t itemCount() const { return items_.size(); }

 private:
  struct ItemState {
    std::set<sim::NodeAddr> replicas;
    std::size_t target = 0;
  };

  sim::Network& network_;
  std::map<OverlayId, ItemState> items_;
};

/// Samples availability of all items at fixed intervals; reports the mean.
class AvailabilityProbe {
 public:
  AvailabilityProbe(ReplicationManager& manager,
                    std::vector<OverlayId> items);

  /// Takes one sample now.
  void sample();

  /// Schedules `count` samples every `interval` on the simulator.
  void schedule(sim::Simulator& sim, sim::SimTime interval, std::size_t count);

  double meanAvailability() const;
  std::size_t sampleCount() const { return samples_; }

 private:
  ReplicationManager& manager_;
  std::vector<OverlayId> items_;
  std::size_t samples_ = 0;
  std::size_t availableObservations_ = 0;
};

}  // namespace dosn::overlay
