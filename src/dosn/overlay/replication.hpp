// Replica placement and availability tracking — the paper's §I motivation:
// "replication and caching are proven techniques to ensure availability",
// at the price of replicas becoming "another kind of service provider in a
// small scale" (the survey's central observation).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/overlay/node_id.hpp"
#include "dosn/overlay/placement.hpp"
#include "dosn/overlay/retry.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/store/block_store.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::overlay {

/// Tracks which nodes hold a replica of each item and answers availability
/// queries against the network's live/offline state. Replica targets are
/// chosen by a pluggable PlacementPolicy; the default (null) policy is
/// VanillaPolicy, which reproduces the historical uniform-shuffle placement
/// byte for byte.
class ReplicationManager {
 public:
  /// `placement` is borrowed (not owned) and must outlive the manager; null
  /// selects an internally owned VanillaPolicy.
  explicit ReplicationManager(sim::Network& network,
                              PlacementPolicy* placement = nullptr);

  /// Places `replicas` copies of the item on distinct nodes drawn from
  /// `candidates` (policy-ranked; VanillaPolicy = uniformly at random).
  /// `owner` is the item's owning user — the social anchor recorded with the
  /// item so repair() recruits with the same context. Returns the chosen
  /// replica set in placement-preference order.
  std::vector<sim::NodeAddr> place(
      const OverlayId& item, std::size_t replicas,
      const std::vector<sim::NodeAddr>& candidates,
      std::optional<social::UserId> owner = std::nullopt);

  /// Maintenance pass: for every item whose ONLINE replica count fell below
  /// its placement target, recruits additional online candidates (and drops
  /// nothing — offline replicas may come back). Returns replicas added.
  /// This is the re-replication loop DOSN designs run to survive permanent
  /// departures, traded against extra storage/traffic.
  std::size_t repair(const std::vector<sim::NodeAddr>& candidates);

  /// Item is available iff at least one replica node is online.
  bool available(const OverlayId& item) const;

  /// Number of currently online replicas.
  std::size_t onlineReplicas(const OverlayId& item) const;

  /// The item's replica set, ascending by address (empty if unknown).
  const std::vector<sim::NodeAddr>& replicasOf(const OverlayId& item) const;

  /// How many distinct items a node can observe (it stores their replicas) —
  /// the "small-scale service provider" view-size metric. Pairs are sorted
  /// ascending by address (deterministic output path).
  std::vector<std::pair<sim::NodeAddr, std::size_t>> observerViewSizes() const;

  std::size_t itemCount() const { return items_.size(); }

 private:
  // Replica sets are small sorted vectors (k is single digits); the item
  // index is a sorted flat vector — at 100k-1M-node scale a tree node per
  // item/replica was all pointer chases (same rationale as sim/flat_map).
  struct ItemState {
    std::vector<sim::NodeAddr> replicas;  // sorted ascending
    std::size_t target = 0;
    std::optional<social::UserId> owner;  // social anchor for repair
  };

  ItemState* findItem(const OverlayId& item);
  const ItemState* findItem(const OverlayId& item) const;

  sim::Network& network_;
  std::unique_ptr<PlacementPolicy> ownedPolicy_;  // when none was injected
  PlacementPolicy* placement_;
  std::vector<std::pair<OverlayId, ItemState>> items_;  // sorted by id
};

/// Holds replica payloads at a simulated node and answers the replica wire
/// protocol: `repl.store` {reqId, item, value} -> `repl.ack` {reqId, ok} and
/// `repl.fetch` {reqId, item} -> `repl.value` {reqId, found, value}.
///
/// Storage is a pluggable store::BlockStore (DESIGN.md §3e); the default
/// MemoryStore preserves the historical hardwired-map behavior byte for
/// byte. A host over a durable stack (e.g. Crypt(Cache(Async(File)))) can be
/// torn down and rebuilt over the same backend: every block flushed before
/// teardown is re-served — the cold-restart recovery path E7c measures.
///
/// Error mapping at the wire: a put that throws StoreError nacks the store
/// RPC; a fetch whose block fails authentication (CorruptBlockError) answers
/// not-found — a tampered replica can deny a block, never forge one.
class ReplicaHost {
 public:
  /// `blocks` defaults to an in-memory store when null.
  explicit ReplicaHost(sim::Network& network,
                       std::unique_ptr<store::BlockStore> blocks = nullptr);

  sim::NodeAddr addr() const { return endpoint_.addr(); }

  // Narrow storage surface (the raw map accessor is gone — backends are
  // pluggable now): count, membership, and the store itself for wiring and
  // stats.
  std::size_t blockCount() const { return blocks_->size(); }
  bool hasBlock(const OverlayId& id) const { return blocks_->has(id); }
  store::BlockStore& store() { return *blocks_; }
  const store::BlockStore& store() const { return *blocks_; }

  /// Store-layer rejections observed at the wire (nacked puts + corrupt
  /// fetches), also counted in the attached Metrics as `repl.store.error` /
  /// `repl.fetch.corrupt`.
  std::uint64_t storeErrors() const { return storeErrors_; }

 private:
  // Declared before endpoint_: RPC handlers capture `this` and may touch the
  // store, so it must outlive the endpoint's registration.
  std::unique_ptr<store::BlockStore> blocks_;
  std::uint64_t storeErrors_ = 0;
  net::RpcEndpoint endpoint_;
};

/// Client side of the replica protocol: store/fetch against a ReplicaHost
/// with per-RPC timeout and retry-with-exponential-backoff — the defense the
/// fault-injection sweep (test_faults) exercises against lossy links. Fully
/// deterministic under the sim clock (no randomized jitter).
class ReplicaClient {
 public:
  /// `adaptiveTimeout` opts store/fetch RPCs into per-destination adaptive
  /// timeouts and retry budgets (net/rtt.hpp); `rpcTimeout` then serves as
  /// the pre-sample fallback and `retry` as the per-host budget base.
  explicit ReplicaClient(sim::Network& network, RetryPolicy retry = {},
                         sim::SimTime rpcTimeout = 500 * sim::kMillisecond,
                         bool adaptiveTimeout = false);

  sim::NodeAddr addr() const { return endpoint_.addr(); }

  /// Stores `value` for `item` on `host`; done(ok) fires exactly once —
  /// true on ack, false after all attempts time out.
  void store(sim::NodeAddr host, const OverlayId& item, util::Bytes value,
             std::function<void(bool ok)> done);

  /// Fetches `item` from `host`; done fires exactly once — the value on a
  /// hit, nullopt if the host lacks it or all attempts time out.
  void fetch(sim::NodeAddr host, const OverlayId& item,
             std::function<void(std::optional<util::Bytes>)> done);

  // Robustness stats (mirrored into the network's Metrics, if attached, as
  // `repl.rpc.retry` / `repl.rpc.fail`).
  std::uint64_t rpcRetries() const { return endpoint_.retries(); }
  std::uint64_t rpcFailures() const { return endpoint_.failures(); }

 private:
  void sendRpc(sim::NodeAddr host, const std::string& type, util::Bytes body,
               std::function<void(bool ok, util::BytesView reply)> onReply);

  net::RpcEndpoint endpoint_;
  RetryPolicy retry_;
  sim::SimTime rpcTimeout_;
  bool adaptiveTimeout_;
};

/// Samples availability of all items at fixed intervals; reports the mean.
class AvailabilityProbe {
 public:
  AvailabilityProbe(ReplicationManager& manager,
                    std::vector<OverlayId> items);

  /// Takes one sample now.
  void sample();

  /// Schedules `count` samples every `interval` on the simulator.
  void schedule(sim::Simulator& sim, sim::SimTime interval, std::size_t count);

  double meanAvailability() const;
  std::size_t sampleCount() const { return samples_; }

 private:
  ReplicationManager& manager_;
  std::vector<OverlayId> items_;
  std::size_t samples_ = 0;
  std::size_t availableObservations_ = 0;
};

}  // namespace dosn::overlay
