// 160-bit overlay identifiers with XOR distance (Kademlia-style), used by the
// structured control overlay of §II-B.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::overlay {

inline constexpr std::size_t kIdBytes = 20;
inline constexpr std::size_t kIdBits = kIdBytes * 8;

struct OverlayId {
  std::array<std::uint8_t, kIdBytes> bytes{};

  auto operator<=>(const OverlayId&) const = default;

  static OverlayId random(util::Rng& rng);
  /// SHA-256-derived id for arbitrary content (keys, usernames).
  static OverlayId hash(util::BytesView data);
  static OverlayId hash(std::string_view text);

  std::string toHex() const;
};

/// XOR distance.
OverlayId xorDistance(const OverlayId& a, const OverlayId& b);

/// Index of the highest set bit of the XOR distance, in [0, 160); -1 if equal.
/// This is the k-bucket index for `b` in `a`'s routing table.
int bucketIndex(const OverlayId& a, const OverlayId& b);

/// True if distance(a, target) < distance(b, target).
bool closerTo(const OverlayId& target, const OverlayId& a, const OverlayId& b);

}  // namespace dosn::overlay
