#include "dosn/overlay/kademlia.hpp"

#include <algorithm>
#include <memory>

#include "dosn/sim/metrics.hpp"
#include "dosn/store/memory_store.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::overlay {

namespace {

// Interned once at static-init; per-send dispatch is by dense id.
const sim::MessageType kMsgReply("kad.reply");
const sim::MessageType kMsgPing("kad.ping");
const sim::MessageType kMsgFindNode("kad.find_node");
const sim::MessageType kMsgFindValue("kad.find_value");
const sim::MessageType kMsgStore("kad.store");

}  // namespace


namespace {

void writeId(util::Writer& w, const OverlayId& id) {
  w.raw(util::BytesView(id.bytes));
}

OverlayId readId(util::Reader& r) {
  const util::Bytes raw = r.raw(kIdBytes);
  OverlayId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

constexpr std::uint8_t kReplyContacts = 0;
constexpr std::uint8_t kReplyValue = 1;
constexpr std::uint8_t kReplyOk = 2;

}  // namespace

RoutingTable::RoutingTable(OverlayId self, std::size_t k)
    : self_(self), k_(k) {}

void RoutingTable::observe(const Contact& contact) {
  const int index = bucketIndex(self_, contact.id);
  if (index < 0) return;  // self
  auto& bucket = buckets_[static_cast<std::size_t>(index)];
  const auto it = std::find_if(bucket.begin(), bucket.end(), [&](const Contact& c) {
    return c.id == contact.id;
  });
  if (it != bucket.end()) {
    // Move to the most-recently-seen position, refreshing the address.
    bucket.erase(it);
    bucket.push_back(contact);
    return;
  }
  if (bucket.size() >= k_) {
    // Evict the least-recently-seen contact. (Real Kademlia pings it first;
    // in the simulator stale contacts are simply replaced.)
    bucket.erase(bucket.begin());
  }
  bucket.push_back(contact);
}

std::vector<Contact> RoutingTable::closest(const OverlayId& target,
                                           std::size_t count) const {
  std::vector<Contact> all;
  for (const auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end(), [&](const Contact& a, const Contact& b) {
    return closerTo(target, a.id, b.id);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

std::size_t RoutingTable::size() const {
  std::size_t total = 0;
  for (const auto& bucket : buckets_) total += bucket.size();
  return total;
}

struct KademliaNode::Lookup {
  struct Entry {
    Contact contact;
    bool queried = false;
  };

  OverlayId target;
  bool wantValue = false;
  std::function<void(LookupResult)> done;
  std::vector<Entry> shortlist;  // sorted by closeness to target
  std::set<OverlayId> known;
  std::size_t inflight = 0;
  bool finished = false;
  LookupResult result;
};

KademliaNode::KademliaNode(sim::Network& network, OverlayId id,
                           KademliaConfig config)
    : network_(network),
      id_(id),
      config_(config),
      endpoint_(network, "kad.rpc"),
      table_(id, config.k),
      store_(config_.makeStore ? config_.makeStore()
                               : std::make_unique<store::MemoryStore>()) {
  endpoint_.setAdaptiveRetry(config_.adaptiveRetry);
  if (config_.adaptiveTimeout) {
    net::PeerTableConfig peerConfig;
    peerConfig.retry.base = config_.retry;
    endpoint_.configurePeerTable(peerConfig);
  }
  setupRpcHandlers();
}

void KademliaNode::setupRpcHandlers() {
  // Every reply refreshes the sender's routing-table entry — including late
  // replies to already-failed calls. The observer also validates the frame:
  // a reply too short to carry a sender id throws and is dropped, leaving
  // the call pending for the retry/timeout path (matching the historical
  // parse-failure-drops behavior).
  endpoint_.addReplyChannel(kMsgReply);
  endpoint_.setReplyObserver(
      kMsgReply, [this](sim::NodeAddr from, util::BytesView body) {
        util::Reader r(body);
        const OverlayId senderId = readId(r);
        table_.observe(Contact{senderId, from});
      });

  // Request handlers. `body` is everything after the rpcId:
  // `senderId | args`. Replies echo `id_ | kind | data` after the rpcId the
  // endpoint prepends.
  const auto serve = [this](sim::NodeAddr from, util::BytesView body,
                            net::RpcId rpcId,
                            const std::function<void(util::Reader&, util::Writer&)>&
                                answer) {
    util::Reader r(body);
    const OverlayId senderId = readId(r);
    table_.observe(Contact{senderId, from});
    util::Writer reply;
    writeId(reply, id_);
    answer(r, reply);
    endpoint_.reply(from, kMsgReply, rpcId, reply.buffer());
  };

  endpoint_.onRequest(kMsgPing, [serve](sim::NodeAddr from,
                                          util::BytesView body, net::RpcId id) {
    serve(from, body, id,
          [](util::Reader&, util::Writer& reply) { reply.u8(kReplyOk); });
  });
  endpoint_.onRequest(
      kMsgFindNode,
      [this, serve](sim::NodeAddr from, util::BytesView body, net::RpcId id) {
        serve(from, body, id, [this](util::Reader& r, util::Writer& reply) {
          const OverlayId target = readId(r);
          reply.u8(kReplyContacts);
          reply.raw(encodeContacts(table_.closest(target, config_.k)));
        });
      });
  endpoint_.onRequest(
      kMsgFindValue,
      [this, serve](sim::NodeAddr from, util::BytesView body, net::RpcId id) {
        serve(from, body, id, [this](util::Reader& r, util::Writer& reply) {
          const OverlayId key = readId(r);
          const auto value = localGet(key);
          if (value) {
            reply.u8(kReplyValue);
            reply.bytes(*value);
          } else {
            reply.u8(kReplyContacts);
            reply.raw(encodeContacts(table_.closest(key, config_.k)));
          }
        });
      });
  endpoint_.onRequest(
      kMsgStore,
      [this, serve](sim::NodeAddr from, util::BytesView body, net::RpcId id) {
        serve(from, body, id, [this](util::Reader& r, util::Writer& reply) {
          const OverlayId key = readId(r);
          localPut(key, r.bytes());
          reply.u8(kReplyOk);
        });
      });
}

void KademliaNode::localPut(const OverlayId& key, util::BytesView value) {
  try {
    store_->put(key, value);
  } catch (const store::StoreError&) {
    // The classic handler acked stores unconditionally; a failing backend
    // degrades this node to a non-storer, it does not break the protocol.
  }
}

std::optional<util::Bytes> KademliaNode::localGet(const OverlayId& key) {
  try {
    return store_->get(key);
  } catch (const store::StoreError&) {
    return std::nullopt;  // corrupt block reads as absent, never as forged
  }
}

void KademliaNode::bootstrap(const Contact& seed, std::function<void()> done) {
  table_.observe(seed);
  findNode(id_, [done = std::move(done)](LookupResult) {
    if (done) done();
  });
}

void KademliaNode::rejoin(const Contact& seed) { bootstrap(seed, {}); }

void KademliaNode::sendRpc(
    const Contact& to, const std::string& type, util::Bytes payload,
    std::function<void(bool ok, util::BytesView reply)> onReply) {
  util::Writer body;
  writeId(body, id_);
  body.raw(payload);
  net::CallOptions options;
  options.timeout = config_.rpcTimeout;
  options.retry = config_.retry;
  options.adaptiveTimeout = config_.adaptiveTimeout;
  endpoint_.call(to.addr, type, body.buffer(), options,
                 [onReply = std::move(onReply)](bool ok, util::BytesView reply) {
                   if (!onReply) return;
                   // Strip the sender id the observer already consumed; the
                   // caller sees `kind | data`.
                   onReply(ok, ok ? reply.subspan(kIdBytes) : reply);
                 });
}

util::Bytes KademliaNode::encodeContacts(const std::vector<Contact>& contacts) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(contacts.size()));
  for (const auto& c : contacts) {
    writeId(w, c.id);
    w.u64(c.addr);
  }
  return w.take();
}

std::vector<Contact> KademliaNode::decodeContacts(util::Reader& r) {
  const std::uint32_t count = r.u32();
  std::vector<Contact> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Contact c;
    c.id = readId(r);
    c.addr = r.u64();
    out.push_back(c);
  }
  return out;
}

void KademliaNode::store(const OverlayId& key, util::Bytes value,
                         std::function<void(bool)> done) {
  storeImpl(key, std::move(value), std::nullopt, std::move(done));
}

void KademliaNode::storeAs(const OverlayId& key, util::Bytes value,
                           social::UserId owner,
                           std::function<void(bool)> done) {
  storeImpl(key, std::move(value), std::move(owner), std::move(done));
}

void KademliaNode::storeImpl(const OverlayId& key, util::Bytes value,
                             std::optional<social::UserId> owner,
                             std::function<void(bool)> done) {
  findNode(key, [this, key, value = std::move(value), owner = std::move(owner),
                 done = std::move(done)](LookupResult result) {
    if (result.closest.empty()) {
      // No peers known: keep the value locally so at least the owner has it.
      localPut(key, value);
      if (done) done(false);
      return;
    }
    util::Writer body;
    body.raw(util::BytesView(key.bytes));
    body.bytes(value);
    const util::Bytes encoded = body.take();
    const std::size_t width =
        config_.storeWidth == 0
            ? result.closest.size()
            : std::min(config_.storeWidth, result.closest.size());
    if (config_.placement) {
      // Policy path: the lookup's k-closest contacts form the candidate
      // pool; the policy picks `width` of them (e.g. SocialPolicy pulls the
      // owner's friends to the front).
      std::vector<sim::NodeAddr> addrs;
      addrs.reserve(result.closest.size());
      for (const Contact& contact : result.closest) {
        addrs.push_back(contact.addr);
      }
      const PlacementContext ctx{key, owner};
      for (const sim::NodeAddr addr :
           config_.placement->select(ctx, width, addrs)) {
        if (addr == endpoint_.addr()) {
          localPut(key, value);
          continue;
        }
        const auto it = std::find_if(
            result.closest.begin(), result.closest.end(),
            [addr](const Contact& c) { return c.addr == addr; });
        if (it == result.closest.end()) continue;
        sendRpc(*it, kMsgStore, encoded, [](bool, util::BytesView) {});
      }
      if (done) done(true);
      return;
    }
    for (std::size_t i = 0; i < width; ++i) {
      const Contact& contact = result.closest[i];
      if (contact.addr == endpoint_.addr()) {
        localPut(key, value);
        continue;
      }
      sendRpc(contact, kMsgStore, encoded, [](bool, util::BytesView) {});
    }
    if (done) done(true);
  });
}

void KademliaNode::findValue(const OverlayId& key,
                             std::function<void(LookupResult)> done) {
  const auto value = localGet(key);
  if (value) {
    LookupResult result;
    result.value = *value;
    network_.simulator().schedule(0, [done = std::move(done), result] {
      done(result);
    });
    return;
  }
  startLookup(key, /*wantValue=*/true, std::move(done));
}

void KademliaNode::findNode(const OverlayId& target,
                            std::function<void(LookupResult)> done) {
  startLookup(target, /*wantValue=*/false, std::move(done));
}

void KademliaNode::startLookup(const OverlayId& target, bool wantValue,
                               std::function<void(LookupResult)> done) {
  auto lookup = std::make_shared<Lookup>();
  lookup->target = target;
  lookup->wantValue = wantValue;
  lookup->done = std::move(done);
  for (const Contact& c : table_.closest(target, config_.k)) {
    lookup->shortlist.push_back(Lookup::Entry{c, false});
    lookup->known.insert(c.id);
  }
  lookupStep(lookup);
}

void KademliaNode::lookupStep(const std::shared_ptr<Lookup>& lookup) {
  if (lookup->finished) return;

  // Issue queries to the closest unqueried contacts, up to alpha in flight.
  // Only the k closest entries matter for termination.
  std::size_t consideredUnqueried = 0;
  bool issuedAny = false;
  const std::size_t considerLimit = std::min(config_.k, lookup->shortlist.size());
  for (std::size_t i = 0; i < considerLimit; ++i) {
    auto& entry = lookup->shortlist[i];
    if (entry.queried) continue;
    ++consideredUnqueried;
    if (lookup->inflight >= config_.alpha) break;
    entry.queried = true;
    ++lookup->inflight;
    ++lookup->result.messagesSent;
    issuedAny = true;

    util::Writer body;
    body.raw(util::BytesView(lookup->target.bytes));
    const sim::MessageType type = lookup->wantValue ? kMsgFindValue : kMsgFindNode;
    sendRpc(entry.contact, type, body.take(),
            [this, lookup](bool ok, util::BytesView reply) {
              --lookup->inflight;
              if (lookup->finished) return;
              if (ok) {
                try {
                  util::Reader r(reply);
                  const std::uint8_t kind = r.u8();
                  if (kind == kReplyValue && lookup->wantValue) {
                    lookup->result.value = r.bytes();
                    finishLookup(lookup);
                    return;
                  }
                  if (kind == kReplyContacts) {
                    for (const Contact& c : decodeContacts(r)) {
                      if (lookup->known.insert(c.id).second) {
                        lookup->shortlist.push_back(Lookup::Entry{c, false});
                      }
                    }
                    std::sort(lookup->shortlist.begin(), lookup->shortlist.end(),
                              [&](const Lookup::Entry& a, const Lookup::Entry& b) {
                                return closerTo(lookup->target, a.contact.id,
                                                b.contact.id);
                              });
                  }
                } catch (const util::CodecError&) {
                  // Malformed reply: treat as no new information.
                }
              }
              lookupStep(lookup);
            });
  }
  if (issuedAny) ++lookup->result.hops;

  if (consideredUnqueried == 0 && lookup->inflight == 0) {
    finishLookup(lookup);
  }
}

void KademliaNode::finishLookup(const std::shared_ptr<Lookup>& lookup) {
  if (lookup->finished) return;
  lookup->finished = true;
  for (const auto& entry : lookup->shortlist) {
    lookup->result.closest.push_back(entry.contact);
    if (lookup->result.closest.size() >= config_.k) break;
  }
  if (lookup->done) lookup->done(std::move(lookup->result));
}

}  // namespace dosn::overlay
