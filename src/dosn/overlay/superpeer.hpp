// Semi-structured overlay (paper §II-B, Supernova-style): a subset of peers
// act as super peers that index the content of their assigned leaf peers and
// answer searches by consulting the other super peers (one hop).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"

namespace dosn::overlay {

class SuperPeer {
 public:
  explicit SuperPeer(sim::Network& network);

  sim::NodeAddr addr() const { return addr_; }

  /// Super peers know each other (small, stable set).
  void setPeers(std::vector<sim::NodeAddr> otherSuperPeers);

  std::size_t indexSize() const { return index_.size(); }

 private:
  friend class LeafPeer;
  void onMessage(sim::NodeAddr from, const sim::Message& msg);

  sim::Network& network_;
  sim::NodeAddr addr_;
  std::vector<sim::NodeAddr> peers_;
  // key -> owner leaf address (the index; values stay on the owner).
  std::map<OverlayId, sim::NodeAddr> index_;
};

class LeafPeer {
 public:
  LeafPeer(sim::Network& network, sim::NodeAddr superPeer);

  sim::NodeAddr addr() const { return addr_; }

  /// Stores locally and registers the key with the assigned super peer.
  void publish(const OverlayId& key, util::Bytes value);

  /// Asks the super-peer tier; fetches the value from the owning leaf.
  void search(const OverlayId& key, sim::SimTime timeout,
              std::function<void(std::optional<util::Bytes>)> done);

 private:
  void onMessage(sim::NodeAddr from, const sim::Message& msg);

  struct PendingQuery {
    OverlayId key;
    std::function<void(std::optional<util::Bytes>)> done;
  };

  sim::Network& network_;
  sim::NodeAddr addr_;
  sim::NodeAddr superPeer_;
  std::map<OverlayId, util::Bytes> store_;
  std::map<std::uint64_t, PendingQuery> pending_;
  std::uint64_t nextQueryId_ = 1;
};

}  // namespace dosn::overlay
