// Semi-structured overlay (paper §II-B, Supernova-style): a subset of peers
// act as super peers that index the content of their assigned leaf peers and
// answer searches by consulting the other super peers (one hop).
//
// A leaf search is a net::RpcEndpoint openCall(): the endpoint allocates the
// query id, carries the searched key as the call tag across the
// query -> owner -> fetch chain, owns the one overall deadline, and records
// sp.search latency/outcome metrics.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dosn/net/rpc_endpoint.hpp"
#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"

namespace dosn::overlay {

class SuperPeer {
 public:
  explicit SuperPeer(sim::Network& network);

  sim::NodeAddr addr() const { return endpoint_.addr(); }

  /// Super peers know each other (small, stable set).
  void setPeers(std::vector<sim::NodeAddr> otherSuperPeers);

  std::size_t indexSize() const { return index_.size(); }

 private:
  net::RpcEndpoint endpoint_;
  std::vector<sim::NodeAddr> peers_;
  // key -> owner leaf address (the index; values stay on the owner).
  std::map<OverlayId, sim::NodeAddr> index_;
};

class LeafPeer {
 public:
  LeafPeer(sim::Network& network, sim::NodeAddr superPeer);

  sim::NodeAddr addr() const { return endpoint_.addr(); }

  /// Stores locally and registers the key with the assigned super peer.
  void publish(const OverlayId& key, util::Bytes value);

  /// Asks the super-peer tier; fetches the value from the owning leaf.
  void search(const OverlayId& key, sim::SimTime timeout,
              std::function<void(std::optional<util::Bytes>)> done);

  /// Opts search deadlines into the adaptive estimator (net/rtt.hpp), keyed
  /// by the assigned super peer (the chain's first hop) and fed whole-chain
  /// completion times; the `timeout` argument to search() becomes the
  /// pre-sample fallback. Off by default.
  void setAdaptiveTimeout(bool enabled) { adaptiveTimeout_ = enabled; }

 private:
  sim::Network& network_;
  net::RpcEndpoint endpoint_;
  sim::NodeAddr superPeer_;
  std::map<OverlayId, util::Bytes> store_;
  bool adaptiveTimeout_ = false;
};

}  // namespace dosn::overlay
