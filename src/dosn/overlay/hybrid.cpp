#include "dosn/overlay/hybrid.hpp"

namespace dosn::overlay {

HybridNode::HybridNode(sim::Network& network, OverlayId id,
                       KademliaConfig kadConfig, GossipConfig gossipConfig)
    : dht_(network, id, kadConfig), cache_(network, gossipConfig) {}

void HybridNode::publish(const OverlayId& key, util::Bytes value,
                         bool seedCache) {
  if (seedCache) cache_.put(key, value, nextVersion_++);
  dht_.store(key, std::move(value));
}

void HybridNode::lookup(const OverlayId& key,
                        std::function<void(HybridLookupResult)> done) {
  if (const auto cached = cache_.get(key)) {
    HybridLookupResult result;
    result.value = *cached;
    result.fromCache = true;
    done(std::move(result));
    return;
  }
  dht_.findValue(key, [this, key, done = std::move(done)](LookupResult dhtResult) {
    HybridLookupResult result;
    result.value = dhtResult.value;
    result.messagesSent = dhtResult.messagesSent;
    result.hops = dhtResult.hops;
    if (dhtResult.value) {
      // Popular items get cached and then spread epidemically.
      cache_.put(key, *dhtResult.value, nextVersion_++);
    }
    done(std::move(result));
  });
}

}  // namespace dosn::overlay
