// Pluggable replica-placement policies (DESIGN.md §3f). The paper's §I
// availability argument and §IV "secure social search" category both hinge
// on *where* replicas live; the socially-aware DHT line of work (PAPERS.md)
// partitions and replicates by social locality so a user's wall and their
// friends' replicas are overlay-near. This layer makes that choice a policy:
//
//  - VanillaPolicy reproduces the historical ReplicationManager behavior
//    byte for byte (uniform shuffle via the network RNG, take a prefix) —
//    the default everywhere, so every sim-driven bench stays byte-identical
//    at a pinned seed (tests/test_placement.cpp pins this differentially).
//  - SocialPolicy ranks candidates by social proximity to the item's owner:
//    the owner's own node and direct friends first, then friends-of-friends,
//    then everyone else by XOR distance of their (bound) overlay id to the
//    item, with a final deterministic tie-break by NodeAddr. Liveness is the
//    primary key (an online stranger beats an offline friend); *at equal
//    liveness a friend always outranks a non-friend* — the property the
//    placement test suite pins.
//
// Policies are shared, not owned: one SocialPolicy instance carries the
// addr→user / addr→overlay-id bindings for a whole simulation and is handed
// by pointer to ReplicationManager and KademliaConfig::placement.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dosn/overlay/node_id.hpp"
#include "dosn/sim/network.hpp"
#include "dosn/social/graph.hpp"

namespace dosn::overlay {

/// Per-decision context: the item being placed and, when the caller knows
/// it, the item's owning user (the social anchor for SocialPolicy).
struct PlacementContext {
  OverlayId item;
  std::optional<social::UserId> owner;
};

/// Strategy for choosing replica targets. Contract: select() returns up to
/// `count` *distinct* addresses drawn from `candidates` (never repeats an
/// address even if the candidate list contains duplicates — the dedup-by-
/// NodeAddr rule the recruit-path regression test pins), in placement-
/// preference order, deterministically for a given RNG state and inputs.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::vector<sim::NodeAddr> select(
      const PlacementContext& ctx, std::size_t count,
      const std::vector<sim::NodeAddr>& candidates) = 0;

  /// Short label for bench tables ("vanilla", "social").
  virtual std::string name() const = 0;
};

/// The historical placement: shuffle the full candidate pool with the
/// network's RNG, then take the first `count` distinct addresses. The
/// shuffle ALWAYS covers the whole pool (even when fewer than `count`
/// survive) so the RNG consumption — and therefore every downstream draw in
/// a seeded simulation — matches the pre-policy inlined code exactly.
class VanillaPolicy final : public PlacementPolicy {
 public:
  explicit VanillaPolicy(sim::Network& network) : network_(network) {}

  std::vector<sim::NodeAddr> select(
      const PlacementContext& ctx, std::size_t count,
      const std::vector<sim::NodeAddr>& candidates) override;

  std::string name() const override { return "vanilla"; }

 private:
  sim::Network& network_;
};

struct SocialPolicyConfig {
  /// The social graph proximity is scored against. Required for social
  /// ranking; with no graph (or an owner unknown to it) every candidate
  /// lands in the stranger tier and selection degrades gracefully to the
  /// XOR/addr fallback order.
  const social::SocialGraph* graph = nullptr;
  /// Rank online candidates ahead of offline ones (liveness is the primary
  /// sort key; social tier only breaks liveness ties).
  bool preferOnline = true;
};

/// Social-locality placement. Candidates are ranked by
///   (liveness, social tier, XOR distance to the item, NodeAddr)
/// where tier 0 = the owner's own node or a direct friend, tier 1 = a
/// friend-of-a-friend, tier 2 = everyone else. XOR distance is available
/// only for candidates whose overlay id was bound via bindId(); unbound
/// candidates sort after bound ones within a tier, by address. The final
/// NodeAddr key makes the whole ordering a strict total order, so placement
/// is deterministic regardless of candidate order — the tie-break the
/// placement tests pin.
class SocialPolicy final : public PlacementPolicy {
 public:
  SocialPolicy(sim::Network& network, SocialPolicyConfig config);

  /// Binds a simulated node to the user it hosts (the social identity
  /// placement scores against).
  void bind(sim::NodeAddr addr, social::UserId user);
  /// Binds a node's overlay id, enabling the XOR-distance fallback key.
  void bindId(sim::NodeAddr addr, const OverlayId& id);

  /// The bound user, or nullptr.
  const social::UserId* userOf(sim::NodeAddr addr) const;

  /// Social tier of `addr` relative to `owner`: 0 friend-or-self, 1
  /// friend-of-friend, 2 stranger/unbound. Exposed for tests and benches
  /// (replica-locality accounting).
  int tierOf(const social::UserId& owner, sim::NodeAddr addr) const;

  std::vector<sim::NodeAddr> select(
      const PlacementContext& ctx, std::size_t count,
      const std::vector<sim::NodeAddr>& candidates) override;

  std::string name() const override { return "social"; }

 private:
  sim::Network& network_;
  SocialPolicyConfig config_;
  sim::AddrMap<social::UserId> users_;
  sim::AddrMap<OverlayId> ids_;
};

}  // namespace dosn::overlay
