#include "dosn/overlay/placement.hpp"

#include <algorithm>
#include <set>

namespace dosn::overlay {

std::vector<sim::NodeAddr> VanillaPolicy::select(
    const PlacementContext& ctx, std::size_t count,
    const std::vector<sim::NodeAddr>& candidates) {
  (void)ctx;
  std::vector<sim::NodeAddr> pool = candidates;
  // Shuffle the FULL pool before truncating — the historical inlined code
  // did exactly this, and matching its RNG consumption keeps every seeded
  // simulation downstream of a placement byte-identical.
  network_.rng().shuffle(pool);
  std::vector<sim::NodeAddr> chosen;
  chosen.reserve(std::min(count, pool.size()));
  for (const sim::NodeAddr addr : pool) {
    if (chosen.size() >= count) break;
    if (std::find(chosen.begin(), chosen.end(), addr) != chosen.end()) {
      continue;  // duplicate candidate — never repeat an address
    }
    chosen.push_back(addr);
  }
  return chosen;
}

SocialPolicy::SocialPolicy(sim::Network& network, SocialPolicyConfig config)
    : network_(network), config_(config) {}

void SocialPolicy::bind(sim::NodeAddr addr, social::UserId user) {
  users_[addr] = std::move(user);
}

void SocialPolicy::bindId(sim::NodeAddr addr, const OverlayId& id) {
  ids_[addr] = id;
}

const social::UserId* SocialPolicy::userOf(sim::NodeAddr addr) const {
  return users_.find(addr);
}

int SocialPolicy::tierOf(const social::UserId& owner,
                         sim::NodeAddr addr) const {
  const social::UserId* user = users_.find(addr);
  if (!user || !config_.graph) return 2;
  if (*user == owner || config_.graph->areFriends(owner, *user)) return 0;
  const std::set<social::UserId> fof = config_.graph->friendsOfFriends(owner);
  return fof.count(*user) ? 1 : 2;
}

std::vector<sim::NodeAddr> SocialPolicy::select(
    const PlacementContext& ctx, std::size_t count,
    const std::vector<sim::NodeAddr>& candidates) {
  // Dedup first: the ranking below is a strict total order on addresses, so
  // sorting a deduped list yields a deterministic preference order no matter
  // how the caller ordered (or repeated) candidates.
  std::vector<sim::NodeAddr> pool = candidates;
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // Precompute the owner's friend / friend-of-friend sets once per decision
  // (friendsOfFriends walks the adjacency; per-candidate calls would be
  // quadratic in degree).
  std::set<social::UserId> friends;
  std::set<social::UserId> fof;
  const social::UserId* owner = ctx.owner ? &*ctx.owner : nullptr;
  if (owner && config_.graph && config_.graph->hasUser(*owner)) {
    for (auto& f : config_.graph->friendsOf(*owner)) friends.insert(f);
    fof = config_.graph->friendsOfFriends(*owner);
  }

  struct Ranked {
    bool offline;
    int tier;
    bool unbound;          // no overlay id bound → no XOR key
    OverlayId distance;    // xorDistance(boundId, item) when bound
    sim::NodeAddr addr;

    bool operator<(const Ranked& other) const {
      if (offline != other.offline) return !offline;
      if (tier != other.tier) return tier < other.tier;
      if (unbound != other.unbound) return !unbound;
      if (distance != other.distance) return distance < other.distance;
      return addr < other.addr;
    }
  };

  std::vector<Ranked> ranked;
  ranked.reserve(pool.size());
  for (const sim::NodeAddr addr : pool) {
    Ranked r;
    r.addr = addr;
    r.offline = config_.preferOnline && !network_.isOnline(addr);
    const social::UserId* user = users_.find(addr);
    if (owner && user) {
      if (*user == *owner || friends.count(*user)) {
        r.tier = 0;
      } else if (fof.count(*user)) {
        r.tier = 1;
      } else {
        r.tier = 2;
      }
    } else {
      r.tier = 2;
    }
    const OverlayId* id = ids_.find(addr);
    r.unbound = id == nullptr;
    if (id) r.distance = xorDistance(*id, ctx.item);
    ranked.push_back(r);
  }
  std::sort(ranked.begin(), ranked.end());

  std::vector<sim::NodeAddr> chosen;
  chosen.reserve(std::min(count, ranked.size()));
  for (const Ranked& r : ranked) {
    if (chosen.size() >= count) break;
    chosen.push_back(r.addr);
  }
  return chosen;
}

}  // namespace dosn::overlay
