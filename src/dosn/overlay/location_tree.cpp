#include "dosn/overlay/location_tree.hpp"

#include <algorithm>

#include "dosn/util/strings.hpp"

namespace dosn::overlay {

bool LocationTree::splitPath(const LocationPath& path,
                             std::vector<std::string>& segments) {
  segments.clear();
  for (const std::string& segment : util::split(path, '/')) {
    if (segment.empty()) return false;
    segments.push_back(util::toLower(segment));
  }
  return !segments.empty();
}

bool LocationTree::registerUser(const social::UserId& user,
                                const LocationPath& path) {
  std::vector<std::string> segments;
  if (!splitPath(path, segments)) return false;
  deregisterUser(user);

  Node* node = &root_;
  for (const std::string& segment : segments) {
    auto& child = node->children[segment];
    if (!child) child = std::make_unique<Node>();
    node = child.get();
    // First registrant through a node coordinates it.
    if (!node->coordinator) node->coordinator = user;
  }
  node->residents.insert(user);
  locations_[user] = path;
  return true;
}

void LocationTree::deregisterUser(const social::UserId& user) {
  const auto it = locations_.find(user);
  if (it == locations_.end()) return;
  std::vector<std::string> segments;
  splitPath(it->second, segments);
  // Walk down, removing residency and re-electing coordinators.
  std::vector<Node*> pathNodes;
  Node* node = &root_;
  for (const std::string& segment : segments) {
    node = node->children.at(segment).get();
    pathNodes.push_back(node);
  }
  node->residents.erase(user);
  // Re-elect bottom-up so parents can inherit freshly elected child
  // coordinators.
  for (auto it = pathNodes.rbegin(); it != pathNodes.rend(); ++it) {
    if ((*it)->coordinator == user) {
      (*it)->coordinator.reset();
      electCoordinator(**it);
    }
  }
  locations_.erase(it);
}

void LocationTree::electCoordinator(Node& node) {
  if (!node.residents.empty()) {
    node.coordinator = *node.residents.begin();
    return;
  }
  for (const auto& [name, child] : node.children) {
    if (child->coordinator) {
      node.coordinator = child->coordinator;
      return;
    }
  }
}

const LocationTree::Node* LocationTree::findNode(const LocationPath& path) const {
  std::vector<std::string> segments;
  if (!splitPath(path, segments)) return nullptr;
  const Node* node = &root_;
  for (const std::string& segment : segments) {
    const auto it = node->children.find(segment);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

void LocationTree::collect(const Node& node,
                           std::vector<social::UserId>& out) const {
  out.insert(out.end(), node.residents.begin(), node.residents.end());
  for (const auto& [name, child] : node.children) collect(*child, out);
}

std::vector<social::UserId> LocationTree::usersIn(const LocationPath& path) const {
  std::vector<social::UserId> out;
  const Node* node = findNode(path);
  if (node) collect(*node, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<social::UserId> LocationTree::usersExactlyAt(
    const LocationPath& path) const {
  const Node* node = findNode(path);
  if (!node) return {};
  return std::vector<social::UserId>(node->residents.begin(),
                                     node->residents.end());
}

std::optional<social::UserId> LocationTree::coordinatorOf(
    const LocationPath& path) const {
  const Node* node = findNode(path);
  if (!node) return std::nullopt;
  return node->coordinator;
}

std::optional<LocationPath> LocationTree::locationOf(
    const social::UserId& user) const {
  const auto it = locations_.find(user);
  if (it == locations_.end()) return std::nullopt;
  return it->second;
}

std::size_t LocationTree::countNodes(const Node& node) {
  std::size_t total = 1;
  for (const auto& [name, child] : node.children) total += countNodes(*child);
  return total;
}

std::size_t LocationTree::nodesTouchedBy(const LocationPath& path) const {
  const Node* node = findNode(path);
  if (!node) return 0;
  std::vector<std::string> segments;
  splitPath(path, segments);
  return segments.size() + countNodes(*node);
}

std::size_t LocationTree::regionCount() const { return countNodes(root_) - 1; }

}  // namespace dosn::overlay
