// Hybrid control overlay (paper §II-B, Cuckoo-style): "structured lookup for
// finding rare items, whereas the unstructured lookup helps with the fast
// discovery of popular items". A gossip cache is consulted first; misses fall
// through to the DHT.
#pragma once

#include <functional>

#include "dosn/overlay/gossip.hpp"
#include "dosn/overlay/kademlia.hpp"

namespace dosn::overlay {

struct HybridLookupResult {
  std::optional<util::Bytes> value;
  bool fromCache = false;      // served by the unstructured tier
  std::size_t messagesSent = 0;
  std::size_t hops = 0;
};

/// Combines a KademliaNode (structured tier, authoritative storage) with a
/// GossipNode (unstructured tier, popularity-driven cache).
class HybridNode {
 public:
  HybridNode(sim::Network& network, OverlayId id, KademliaConfig kadConfig = {},
             GossipConfig gossipConfig = {});

  KademliaNode& dht() { return dht_; }
  GossipNode& cache() { return cache_; }
  const OverlayId& id() const { return dht_.id(); }

  /// Publishes authoritatively to the DHT; optionally seeds the cache
  /// (publishers of popular content gossip it).
  void publish(const OverlayId& key, util::Bytes value, bool seedCache);

  /// Cache-first lookup with DHT fallback. Hits found via the DHT are
  /// inserted into the local cache (and spread from there by gossip).
  void lookup(const OverlayId& key,
              std::function<void(HybridLookupResult)> done);

 private:
  KademliaNode dht_;
  GossipNode cache_;
  std::uint64_t nextVersion_ = 1;
};

}  // namespace dosn::overlay
