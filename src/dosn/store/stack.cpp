#include "dosn/store/stack.hpp"

#include "dosn/store/cache_store.hpp"
#include "dosn/store/crypt_store.hpp"
#include "dosn/store/file_store.hpp"
#include "dosn/store/memory_store.hpp"

namespace dosn::store {

std::unique_ptr<BlockStore> makeStack(const StackConfig& config) {
  std::unique_ptr<BlockStore> stack;
  if (config.fileRoot.empty()) {
    stack = std::make_unique<MemoryStore>();
  } else {
    stack = std::make_unique<FileStore>(config.fileRoot);
  }
  if (config.async) {
    if (!config.simulator) {
      throw StoreError("makeStack: async tier needs a simulator");
    }
    stack = std::make_unique<AsyncStore>(std::move(stack), *config.simulator,
                                         config.asyncConfig);
  }
  if (config.cache) {
    stack = std::make_unique<CacheStore>(std::move(stack), config.cacheBlocks,
                                         config.cacheBytes);
  }
  if (config.crypt) {
    stack = std::make_unique<CryptStore>(std::move(stack), config.cryptKey);
  }
  return stack;
}

}  // namespace dosn::store
