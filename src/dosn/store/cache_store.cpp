#include "dosn/store/cache_store.hpp"

namespace dosn::store {

CacheStore::CacheStore(std::unique_ptr<BlockStore> inner,
                       std::size_t capacityBlocks, std::size_t capacityBytes)
    : StoreDecorator(std::move(inner)),
      capacityBlocks_(capacityBlocks),
      capacityBytes_(capacityBytes) {
  if (capacityBlocks_ == 0 || capacityBytes_ == 0) {
    throw StoreError("CacheStore: zero capacity");
  }
}

void CacheStore::touch(Entry& entry, const BlockId& id) {
  recency_.erase(entry.recency);
  recency_.push_front(id);
  entry.recency = recency_.begin();
}

void CacheStore::insert(const BlockId& id, util::BytesView data) {
  // Blocks larger than the byte budget are served straight from the inner
  // store; caching one would evict everything for a single-use entry. A
  // previously cached (smaller) value for the same id must still be dropped,
  // or an oversized overwrite would keep serving the stale bytes.
  if (data.size() > capacityBytes_) {
    const auto stale = cache_.find(id);
    if (stale != cache_.end()) {
      cachedBytes_ -= stale->second.data.size();
      recency_.erase(stale->second.recency);
      cache_.erase(stale);
    }
    return;
  }
  const auto it = cache_.find(id);
  if (it != cache_.end()) {
    cachedBytes_ -= it->second.data.size();
    it->second.data.assign(data.begin(), data.end());
    cachedBytes_ += it->second.data.size();
    touch(it->second, id);
  } else {
    recency_.push_front(id);
    cache_.emplace(id, Entry{recency_.begin(),
                             util::Bytes(data.begin(), data.end())});
    cachedBytes_ += data.size();
  }
  evictToFit();
}

void CacheStore::evictToFit() {
  while (cache_.size() > capacityBlocks_ || cachedBytes_ > capacityBytes_) {
    const BlockId victim = recency_.back();
    recency_.pop_back();
    const auto it = cache_.find(victim);
    cachedBytes_ -= it->second.data.size();
    cache_.erase(it);
    ++evictions_;
  }
}

void CacheStore::put(const BlockId& id, util::BytesView data) {
  ++counters_.puts;
  counters_.putBytes += data.size();
  inner_->put(id, data);  // write-through first: inner is authoritative
  insert(id, data);
}

std::optional<util::Bytes> CacheStore::get(const BlockId& id) {
  ++counters_.gets;
  const auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++counters_.hits;
    counters_.getBytes += it->second.data.size();
    touch(it->second, id);
    return it->second.data;
  }
  auto value = inner_->get(id);
  if (!value) {
    ++counters_.misses;
    return std::nullopt;
  }
  // A miss answered below still counts as a miss for the hit-ratio metric;
  // the fetched block is promoted so repeat reads hit.
  ++counters_.misses;
  counters_.getBytes += value->size();
  insert(id, *value);
  return value;
}

bool CacheStore::erase(const BlockId& id) {
  const auto it = cache_.find(id);
  if (it != cache_.end()) {
    cachedBytes_ -= it->second.data.size();
    recency_.erase(it->second.recency);
    cache_.erase(it);
  }
  const bool removed = inner_->erase(id);
  if (removed) ++counters_.erases;
  return removed;
}

bool CacheStore::has(const BlockId& id) const {
  return cache_.count(id) != 0 || inner_->has(id);
}

CacheStats CacheStore::cacheStats() const {
  return CacheStats{counters_.hits, counters_.misses, evictions_,
                    cache_.size(), cachedBytes_};
}

double CacheStore::hitRatio() const {
  const std::uint64_t total = counters_.hits + counters_.misses;
  if (total == 0) return 0.0;
  return static_cast<double>(counters_.hits) / static_cast<double>(total);
}

std::vector<BlockId> CacheStore::cachedIds() const {
  return std::vector<BlockId>(recency_.begin(), recency_.end());
}

}  // namespace dosn::store
