// In-memory block store over a sorted flat vector — the default backend,
// byte-for-byte equivalent to the std::map ReplicaHost used to hardwire, but
// with one contiguous allocation for the index instead of a node per block.
#pragma once

#include "dosn/store/block_store.hpp"

namespace dosn::store {

class MemoryStore final : public BlockStore {
 public:
  MemoryStore() = default;

  void put(const BlockId& id, util::BytesView data) override;
  std::optional<util::Bytes> get(const BlockId& id) override;
  bool erase(const BlockId& id) override;
  bool has(const BlockId& id) const override;
  std::vector<BlockId> list() const override;
  std::size_t size() const override { return blocks_.size(); }
  std::string describe() const override { return "memory"; }

 private:
  // Sorted by id; lookup is one binary search over contiguous pairs.
  std::vector<std::pair<BlockId, util::Bytes>> blocks_;

  std::vector<std::pair<BlockId, util::Bytes>>::iterator lowerBound(
      const BlockId& id);
  std::vector<std::pair<BlockId, util::Bytes>>::const_iterator lowerBound(
      const BlockId& id) const;
};

}  // namespace dosn::store
