// Write-behind decorator on the sim clock: puts and erases are acknowledged
// immediately, queued in a bounded dirty set, and applied to the inner store
// in FIFO order on flush. Reads are read-your-writes — the dirty set is
// consulted before the inner store — and list()/size() merge pending state so
// the outside view is always coherent.
//
// Durability semantics (pinned by test_store and measured by E7c):
//  - flush() is the durability boundary. Acked-but-unflushed writes are lost
//    on crash; discardPending() models exactly that and reports the loss.
//  - The destructor does NOT flush: tearing a host down without flushing is
//    a crash, not a graceful shutdown. Call flush() first for the latter.
//  - A second put/erase to a pending id coalesces in place, keeping the
//    original queue position (FIFO by first-dirty time).
//  - The dirty set is bounded (`maxDirty`): an op that would exceed it first
//    spills the oldest pending op synchronously to the inner store.
//
// When constructed with a simulator and a flush interval, a periodic flush
// event self-reschedules while the store is alive; flush latency (sim time
// from enqueue to inner-store apply) is tracked per op.
#pragma once

#include <deque>
#include <map>

#include "dosn/sim/simulator.hpp"
#include "dosn/store/block_store.hpp"

namespace dosn::store {

struct AsyncConfig {
  /// Max pending ops before the oldest is spilled synchronously.
  std::size_t maxDirty = 256;
  /// Periodic flush interval on the sim clock; 0 = manual flush() only.
  sim::SimTime flushInterval = 0;
};

struct AsyncStats {
  std::uint64_t queuedOps = 0;     ///< ops ever enqueued
  std::uint64_t flushedOps = 0;    ///< ops applied to the inner store
  std::uint64_t spilledOps = 0;    ///< synchronous spills (dirty bound hit)
  std::uint64_t lostOps = 0;       ///< ops dropped by discardPending()
  std::uint64_t flushes = 0;       ///< flush() calls that applied >= 1 op
  std::size_t queueDepth = 0;      ///< pending ops right now
  std::size_t maxQueueDepth = 0;
  sim::SimTime flushLatencyTotal = 0;  ///< sum over flushed ops
  sim::SimTime flushLatencyMax = 0;
};

class AsyncStore final : public StoreDecorator {
 public:
  AsyncStore(std::unique_ptr<BlockStore> inner, sim::Simulator& simulator,
             AsyncConfig config = {});
  ~AsyncStore() override;

  void put(const BlockId& id, util::BytesView data) override;
  std::optional<util::Bytes> get(const BlockId& id) override;
  bool erase(const BlockId& id) override;
  bool has(const BlockId& id) const override;
  std::vector<BlockId> list() const override;
  std::size_t size() const override;
  std::string describe() const override {
    return "async(" + inner_->describe() + ")";
  }

  /// Applies every pending op to the inner store in FIFO order, then flushes
  /// any write-behind tier below. Returns the number of own ops applied.
  std::size_t flush() override;

  /// Crash: drops every pending op without applying it. Returns the number
  /// of acked writes lost.
  std::size_t discardPending();

  std::size_t pendingOps() const { return queue_.size(); }
  const AsyncStats& asyncStats() const { return stats_; }

 private:
  struct PendingOp {
    bool isErase = false;
    util::Bytes data;
    sim::SimTime queuedAt = 0;
  };

  void enqueue(const BlockId& id, PendingOp op);
  void applyToInner(const BlockId& id, const PendingOp& op);
  void settleFlushStats(std::size_t applied);
  void scheduleFlush();

  sim::Simulator& simulator_;
  AsyncConfig config_;
  std::deque<BlockId> queue_;            // FIFO of first-dirty ids
  std::map<BlockId, PendingOp> pending_; // latest op per id
  AsyncStats stats_;
  bool flushScheduled_ = false;
  // Shared with scheduled closures so a flush event that fires after this
  // store is destroyed finds the flag down instead of a dangling `this`.
  std::shared_ptr<bool> alive_;
};

}  // namespace dosn::store
