#include "dosn/store/file_store.hpp"

#include <algorithm>
#include <cstdio>
#include <system_error>

namespace dosn::store {

namespace {

constexpr const char* kBlockSuffix = ".blk";
constexpr const char* kTempSuffix = ".tmp";

std::string hexName(const BlockId& id) {
  return util::toHex(util::BytesView(id.bytes));
}

/// Parses "<40 hex chars>.blk" back into a BlockId; nullopt for anything else
/// (stray temp files, foreign droppings).
std::optional<BlockId> parseName(const std::string& name) {
  const std::string suffix = kBlockSuffix;
  if (name.size() != overlay::kIdBytes * 2 + suffix.size()) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const auto raw = util::fromHex(name.substr(0, overlay::kIdBytes * 2));
  if (!raw || raw->size() != overlay::kIdBytes) return std::nullopt;
  BlockId id;
  std::copy(raw->begin(), raw->end(), id.bytes.begin());
  return id;
}

}  // namespace

FileStore::FileStore(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec || !std::filesystem::is_directory(root_)) {
    throw BackendError("FileStore: cannot create root " + root_.string());
  }
}

std::filesystem::path FileStore::blockPath(const BlockId& id) const {
  return root_ / (hexName(id) + kBlockSuffix);
}

void FileStore::put(const BlockId& id, util::BytesView data) {
  ++counters_.puts;
  counters_.putBytes += data.size();
  const std::filesystem::path tmp = root_ / (hexName(id) + kTempSuffix);
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) throw BackendError("FileStore: cannot open " + tmp.string());
    const std::size_t written =
        data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
    // fclose unconditionally: a short-circuited close would leak the FILE*
    // (and its fd) on the short-write path.
    const bool wrote = written == data.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw BackendError("FileStore: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, blockPath(id), ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw BackendError("FileStore: rename failed for " + hexName(id));
  }
}

std::optional<util::Bytes> FileStore::get(const BlockId& id) {
  ++counters_.gets;
  std::FILE* f = std::fopen(blockPath(id).c_str(), "rb");
  if (!f) {
    ++counters_.misses;
    return std::nullopt;
  }
  util::Bytes data;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw BackendError("FileStore: read failed for " + hexName(id));
  ++counters_.hits;
  counters_.getBytes += data.size();
  return data;
}

bool FileStore::erase(const BlockId& id) {
  std::error_code ec;
  const bool removed = std::filesystem::remove(blockPath(id), ec);
  if (ec) throw BackendError("FileStore: remove failed for " + hexName(id));
  if (removed) ++counters_.erases;
  return removed;
}

bool FileStore::has(const BlockId& id) const {
  std::error_code ec;
  return std::filesystem::exists(blockPath(id), ec);
}

std::vector<BlockId> FileStore::list() const {
  std::vector<BlockId> ids;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    const auto id = parseName(it->path().filename().string());
    if (id) ids.push_back(*id);
  }
  if (ec) throw BackendError("FileStore: cannot list " + root_.string());
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t FileStore::size() const { return list().size(); }

}  // namespace dosn::store
