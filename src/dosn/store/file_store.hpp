// File-backed block store: one file per block under a root directory. This is
// the durability tier — a ReplicaHost rebuilt over the same root re-serves
// everything that was flushed to it (the cold-restart recovery path E7c
// measures).
//
// On-disk layout is deterministic: block <id> lives at
//   <root>/<40-char lowercase hex of id>.blk
// Writes go to "<hex>.tmp" first and are renamed into place, so a crash mid-
// write leaves either the old block or a stray .tmp (ignored by list()),
// never a torn .blk.
#pragma once

#include <filesystem>

#include "dosn/store/block_store.hpp"

namespace dosn::store {

class FileStore final : public BlockStore {
 public:
  /// Creates the root directory if needed. Throws BackendError if the root
  /// cannot be created or is not a directory.
  explicit FileStore(std::filesystem::path root);

  void put(const BlockId& id, util::BytesView data) override;
  std::optional<util::Bytes> get(const BlockId& id) override;
  bool erase(const BlockId& id) override;
  bool has(const BlockId& id) const override;
  std::vector<BlockId> list() const override;
  std::size_t size() const override;
  std::string describe() const override { return "file"; }

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path blockPath(const BlockId& id) const;

  std::filesystem::path root_;
};

}  // namespace dosn::store
