#include "dosn/store/async_store.hpp"

#include <algorithm>

namespace dosn::store {

AsyncStore::AsyncStore(std::unique_ptr<BlockStore> inner,
                       sim::Simulator& simulator, AsyncConfig config)
    : StoreDecorator(std::move(inner)),
      simulator_(simulator),
      config_(config),
      alive_(std::make_shared<bool>(true)) {
  if (config_.maxDirty == 0) throw StoreError("AsyncStore: zero dirty bound");
}

AsyncStore::~AsyncStore() {
  // No flush on destruction — destruction without flush() models a crash.
  *alive_ = false;
}

void AsyncStore::scheduleFlush() {
  if (config_.flushInterval == 0 || flushScheduled_) return;
  flushScheduled_ = true;
  simulator_.schedule(config_.flushInterval, [this, alive = alive_] {
    if (!*alive) return;
    flushScheduled_ = false;
    flush();
    if (!queue_.empty()) scheduleFlush();
  });
}

void AsyncStore::enqueue(const BlockId& id, PendingOp op) {
  ++stats_.queuedOps;
  const auto it = pending_.find(id);
  if (it != pending_.end()) {
    // Coalesce: keep the original queue position and enqueue time so flush
    // order stays FIFO by first-dirty time.
    op.queuedAt = it->second.queuedAt;
    it->second = std::move(op);
  } else {
    if (queue_.size() >= config_.maxDirty) {
      // Bounded dirty set: spill the oldest op synchronously. Apply before
      // dequeuing — if the inner store throws, the victim stays queued (and
      // the new op is never acked; the exception propagates to the caller).
      const BlockId victim = queue_.front();
      const auto vit = pending_.find(victim);
      applyToInner(victim, vit->second);
      queue_.pop_front();
      pending_.erase(vit);
      ++stats_.spilledOps;
      ++stats_.flushedOps;
    }
    queue_.push_back(id);
    pending_.emplace(id, std::move(op));
  }
  stats_.queueDepth = queue_.size();
  stats_.maxQueueDepth = std::max(stats_.maxQueueDepth, queue_.size());
  scheduleFlush();
}

void AsyncStore::applyToInner(const BlockId& id, const PendingOp& op) {
  if (op.isErase) {
    inner_->erase(id);
  } else {
    inner_->put(id, op.data);
  }
  // Latency is recorded only for applies that reached the inner store; a
  // throwing apply is retried by a later flush and measured then.
  const sim::SimTime latency = simulator_.now() - op.queuedAt;
  stats_.flushLatencyTotal += latency;
  stats_.flushLatencyMax = std::max(stats_.flushLatencyMax, latency);
}

void AsyncStore::put(const BlockId& id, util::BytesView data) {
  ++counters_.puts;
  counters_.putBytes += data.size();
  enqueue(id, PendingOp{false, util::Bytes(data.begin(), data.end()),
                        simulator_.now()});
}

std::optional<util::Bytes> AsyncStore::get(const BlockId& id) {
  ++counters_.gets;
  const auto it = pending_.find(id);
  if (it != pending_.end()) {
    if (it->second.isErase) {
      ++counters_.misses;
      return std::nullopt;
    }
    ++counters_.hits;
    counters_.getBytes += it->second.data.size();
    return it->second.data;
  }
  auto value = inner_->get(id);
  if (!value) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  counters_.getBytes += value->size();
  return value;
}

bool AsyncStore::erase(const BlockId& id) {
  const auto it = pending_.find(id);
  const bool pendingPut = it != pending_.end() && !it->second.isErase;
  const bool present = pendingPut ||
                       (it == pending_.end() && inner_->has(id));
  if (!present) return false;
  ++counters_.erases;
  if (inner_->has(id)) {
    // Queue a tombstone so the inner copy dies in flush order.
    enqueue(id, PendingOp{true, {}, simulator_.now()});
  } else {
    // The block only ever existed in the dirty set: cancel the pending put.
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
    pending_.erase(it);
    stats_.queueDepth = queue_.size();
  }
  return true;
}

bool AsyncStore::has(const BlockId& id) const {
  const auto it = pending_.find(id);
  if (it != pending_.end()) return !it->second.isErase;
  return inner_->has(id);
}

std::vector<BlockId> AsyncStore::list() const {
  std::vector<BlockId> ids = inner_->list();
  for (const auto& [id, op] : pending_) {
    const auto pos = std::lower_bound(ids.begin(), ids.end(), id);
    const bool present = pos != ids.end() && *pos == id;
    if (op.isErase) {
      if (present) ids.erase(pos);
    } else if (!present) {
      ids.insert(pos, id);
    }
  }
  return ids;
}

std::size_t AsyncStore::size() const { return list().size(); }

std::size_t AsyncStore::flush() {
  std::size_t applied = 0;
  try {
    while (!queue_.empty()) {
      // Apply before dequeuing: if the inner store throws (e.g. a FileStore
      // BackendError), the op stays in both queue_ and pending_, so a later
      // put still coalesces onto it and a later flush() retries it.
      const BlockId id = queue_.front();
      const auto it = pending_.find(id);
      applyToInner(id, it->second);
      queue_.pop_front();
      pending_.erase(it);
      ++applied;
    }
  } catch (...) {
    settleFlushStats(applied);
    throw;
  }
  settleFlushStats(applied);
  inner_->flush();  // drain any nested write-behind tier too
  return applied;
}

void AsyncStore::settleFlushStats(std::size_t applied) {
  stats_.queueDepth = queue_.size();
  if (applied > 0) {
    stats_.flushedOps += applied;
    ++stats_.flushes;
  }
}

std::size_t AsyncStore::discardPending() {
  const std::size_t lost = queue_.size();
  queue_.clear();
  pending_.clear();
  stats_.lostOps += lost;
  stats_.queueDepth = 0;
  return lost;
}

}  // namespace dosn::store
