#include "dosn/store/memory_store.hpp"

#include <algorithm>

namespace dosn::store {

namespace {

bool idLess(const std::pair<BlockId, util::Bytes>& entry, const BlockId& id) {
  return entry.first < id;
}

}  // namespace

std::vector<std::pair<BlockId, util::Bytes>>::iterator MemoryStore::lowerBound(
    const BlockId& id) {
  return std::lower_bound(blocks_.begin(), blocks_.end(), id, idLess);
}

std::vector<std::pair<BlockId, util::Bytes>>::const_iterator
MemoryStore::lowerBound(const BlockId& id) const {
  return std::lower_bound(blocks_.begin(), blocks_.end(), id, idLess);
}

void MemoryStore::put(const BlockId& id, util::BytesView data) {
  ++counters_.puts;
  counters_.putBytes += data.size();
  auto it = lowerBound(id);
  if (it != blocks_.end() && it->first == id) {
    it->second.assign(data.begin(), data.end());
  } else {
    blocks_.emplace(it, id, util::Bytes(data.begin(), data.end()));
  }
}

std::optional<util::Bytes> MemoryStore::get(const BlockId& id) {
  ++counters_.gets;
  const auto it = lowerBound(id);
  if (it == blocks_.end() || it->first != id) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  counters_.getBytes += it->second.size();
  return it->second;
}

bool MemoryStore::erase(const BlockId& id) {
  const auto it = lowerBound(id);
  if (it == blocks_.end() || it->first != id) return false;
  blocks_.erase(it);
  ++counters_.erases;
  return true;
}

bool MemoryStore::has(const BlockId& id) const {
  const auto it = lowerBound(id);
  return it != blocks_.end() && it->first == id;
}

std::vector<BlockId> MemoryStore::list() const {
  std::vector<BlockId> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, data] : blocks_) ids.push_back(id);
  return ids;
}

}  // namespace dosn::store
