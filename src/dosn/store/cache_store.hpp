// LRU cache decorator: a bounded hot tier in front of a slower backend
// (file, crypt, async stacks). Write-through — every put lands in the inner
// store before it is cached, so the cache never holds dirtier state than the
// tier below it; get() serves hits from memory and promotes misses.
//
// Capacity is bounded both in blocks and in bytes; whichever bound is
// exceeded first evicts from the least-recently-used end. Eviction order is
// fully deterministic (recency list, no hashing), which the eviction-order
// test pins.
#pragma once

#include <list>
#include <map>

#include "dosn/store/block_store.hpp"

namespace dosn::store {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t cachedBlocks = 0;
  std::size_t cachedBytes = 0;
};

class CacheStore final : public StoreDecorator {
 public:
  CacheStore(std::unique_ptr<BlockStore> inner, std::size_t capacityBlocks,
             std::size_t capacityBytes);

  void put(const BlockId& id, util::BytesView data) override;
  std::optional<util::Bytes> get(const BlockId& id) override;
  bool erase(const BlockId& id) override;
  bool has(const BlockId& id) const override;
  std::string describe() const override {
    return "cache(" + inner_->describe() + ")";
  }

  CacheStats cacheStats() const;
  double hitRatio() const;
  /// Cached ids, most-recently-used first (the eviction-order pin).
  std::vector<BlockId> cachedIds() const;

 private:
  struct Entry {
    std::list<BlockId>::iterator recency;
    util::Bytes data;
  };

  void insert(const BlockId& id, util::BytesView data);
  void touch(Entry& entry, const BlockId& id);
  void evictToFit();

  std::size_t capacityBlocks_;
  std::size_t capacityBytes_;
  std::list<BlockId> recency_;  // front = most recent, back = next victim
  std::map<BlockId, Entry> cache_;
  std::size_t cachedBytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dosn::store
