#include "dosn/store/crypt_store.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"

namespace dosn::store {

namespace {

constexpr std::size_t kSeqBytes = 8;
constexpr std::size_t kTagBytes = 16;
constexpr std::size_t kNonceBytes = 12;
constexpr std::string_view kKeyInfo = "dosn.store.crypt.key";
constexpr std::string_view kNonceInfo = "dosn.store.crypt.nonce";

void appendU64(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t readU64(util::BytesView in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

CryptStore::CryptStore(std::unique_ptr<BlockStore> inner,
                       util::BytesView masterKey)
    : StoreDecorator(std::move(inner)),
      masterKey_(masterKey.begin(), masterKey.end()) {
  if (masterKey_.empty()) throw StoreError("CryptStore: empty master key");
  // Resume the put counter above anything already stored (cold restart over
  // a durable inner store): the seq prefix is readable without decrypting.
  for (const BlockId& id : inner_->list()) {
    const auto envelope = inner_->get(id);
    if (!envelope || envelope->size() < kSeqBytes) continue;
    const std::uint64_t seq = readU64(*envelope);
    if (seq >= nextSeq_) nextSeq_ = seq + 1;
  }
}

util::Bytes CryptStore::blockKey(const BlockId& id) const {
  return crypto::hkdf(masterKey_, util::BytesView(id.bytes),
                      util::toBytes(kKeyInfo), 32);
}

void CryptStore::put(const BlockId& id, util::BytesView data) {
  ++counters_.puts;
  counters_.putBytes += data.size();
  const std::uint64_t seq = nextSeq_++;
  const util::Bytes key = blockKey(id);

  // SIV-style nonce: derived from the plaintext as well as the seq counter
  // and stored in the envelope. Even if the counter regresses (erase of the
  // highest-seq blocks, crash before an AsyncStore flush), a reused
  // (blockKey, seq) with different plaintext still yields a different nonce;
  // a repeat only occurs for identical plaintext, where the identical
  // ciphertext reveals nothing beyond equality.
  util::Bytes nonceInfo = util::toBytes(kNonceInfo);
  appendU64(nonceInfo, seq);
  nonceInfo.insert(nonceInfo.end(), data.begin(), data.end());
  const util::Bytes nonce = crypto::hkdfExpand(key, nonceInfo, kNonceBytes);

  util::Bytes aad(id.bytes.begin(), id.bytes.end());
  appendU64(aad, seq);

  util::Bytes envelope;
  envelope.reserve(kSeqBytes + kNonceBytes + data.size() + kTagBytes);
  appendU64(envelope, seq);
  envelope.insert(envelope.end(), nonce.begin(), nonce.end());
  const util::Bytes sealed = crypto::aeadSeal(key, nonce, data, aad);
  envelope.insert(envelope.end(), sealed.begin(), sealed.end());
  inner_->put(id, envelope);
}

std::optional<util::Bytes> CryptStore::get(const BlockId& id) {
  ++counters_.gets;
  const auto envelope = inner_->get(id);
  if (!envelope) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (envelope->size() < kSeqBytes + kNonceBytes + kTagBytes) {
    ++rejected_;
    throw CorruptBlockError("CryptStore: truncated envelope for " +
                            util::toHex(util::BytesView(id.bytes)));
  }
  const std::uint64_t seq = readU64(*envelope);
  const util::Bytes key = blockKey(id);

  // The nonce is read back from the envelope; tampering with it fails the
  // AEAD tag check like any other envelope byte.
  const util::Bytes nonce(envelope->begin() + kSeqBytes,
                          envelope->begin() + kSeqBytes + kNonceBytes);

  util::Bytes aad(id.bytes.begin(), id.bytes.end());
  appendU64(aad, seq);

  const util::BytesView sealed(envelope->data() + kSeqBytes + kNonceBytes,
                               envelope->size() - kSeqBytes - kNonceBytes);
  auto plain = crypto::aeadOpen(key, nonce, sealed, aad);
  if (!plain) {
    ++rejected_;
    throw CorruptBlockError("CryptStore: authentication failed for " +
                            util::toHex(util::BytesView(id.bytes)));
  }
  ++counters_.hits;
  counters_.getBytes += plain->size();
  return plain;
}

bool CryptStore::erase(const BlockId& id) {
  const bool removed = inner_->erase(id);
  if (removed) ++counters_.erases;
  return removed;
}

}  // namespace dosn::store
