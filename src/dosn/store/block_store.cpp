#include "dosn/store/block_store.hpp"

namespace dosn::store {

StoreDecorator::StoreDecorator(std::unique_ptr<BlockStore> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw StoreError("StoreDecorator: null inner store");
}

}  // namespace dosn::store
