// Pluggable block storage under replication (DESIGN.md §3e). The paper's §I
// observes that replicas become "another kind of service provider in a small
// scale" — this layer is where that provider's storage properties live:
// persistence (FileStore), confidentiality at rest (CryptStore), a cache tier
// (CacheStore) and write-behind batching (AsyncStore), all composable behind
// one interface that ReplicaHost / KademliaNode own.
//
// Contract:
//  - put/get/erase/list/size are the whole surface; decorators wrap an inner
//    store and preserve the observable key->value semantics of a plain map
//    (the differential suite in tests/test_store.cpp pins this).
//  - Expected absence is std::nullopt / false; *integrity* violations
//    (tampered ciphertext, truncation, wrong key) throw CorruptBlockError and
//    never surface forged plaintext; environment failures (unwritable root,
//    rename failure) throw BackendError.
//  - list() is sorted ascending and size() == list().size() at every point,
//    including while an AsyncStore holds unflushed writes — decorators merge
//    their pending state so readers always see a coherent view.
//  - Implementations are deterministic: no wall clock, no ambient RNG; the
//    only randomness a stack consumes is what the caller seeds it with.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dosn/overlay/node_id.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/error.hpp"

namespace dosn::store {

/// Blocks are keyed by overlay identifiers — the same ids the DHT and the
/// replica wire protocol address content by.
using BlockId = overlay::OverlayId;

/// Root of the store error hierarchy.
class StoreError : public util::DosnError {
 public:
  using util::DosnError::DosnError;
};

/// The backing medium failed (unwritable root, rename failure, bad file).
class BackendError : public StoreError {
 public:
  using StoreError::StoreError;
};

/// A block failed authentication or arrived structurally damaged (AEAD tag
/// mismatch, truncated envelope, wrong key). Thrown instead of returning
/// data: a CryptStore never yields unauthenticated plaintext.
class CorruptBlockError : public StoreError {
 public:
  using StoreError::StoreError;
};

/// Per-store operation counters, maintained by every implementation and
/// surfaced into bench metrics. Decorators count their own layer; reading a
/// stack top-down shows where each request was answered.
struct StoreCounters {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;     ///< gets answered with a value
  std::uint64_t misses = 0;   ///< gets answered with nullopt
  std::uint64_t erases = 0;   ///< erase calls that removed a block
  std::uint64_t putBytes = 0;
  std::uint64_t getBytes = 0;
};

class BlockStore {
 public:
  virtual ~BlockStore() = default;
  BlockStore() = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Inserts or overwrites the block. Throws BackendError on medium failure.
  virtual void put(const BlockId& id, util::BytesView data) = 0;

  /// The block's bytes, or nullopt if absent. Throws CorruptBlockError when
  /// the stored block fails authentication/decoding. Non-const: cache tiers
  /// update recency, write-behind tiers serve from their dirty set.
  virtual std::optional<util::Bytes> get(const BlockId& id) = 0;

  /// Removes the block; returns whether it was present.
  virtual bool erase(const BlockId& id) = 0;

  /// Presence check without integrity verification or cache promotion.
  virtual bool has(const BlockId& id) const = 0;

  /// All block ids, ascending (deterministic across implementations).
  virtual std::vector<BlockId> list() const = 0;

  /// Number of blocks (== list().size()).
  virtual std::size_t size() const = 0;

  /// Pushes any buffered writes down to the durable tier (the write-behind
  /// decorator's durability boundary). Returns the number of buffered ops
  /// applied; a store with no write-behind tier returns 0. Decorators
  /// forward, so flushing the top of a stack flushes every tier.
  virtual std::size_t flush() { return 0; }

  /// Human-readable stack description, outermost first —
  /// e.g. "crypt(cache(async(file)))".
  virtual std::string describe() const = 0;

  const StoreCounters& counters() const { return counters_; }

 protected:
  StoreCounters counters_;
};

/// Base for the decorators: owns the wrapped store and forwards the
/// membership/enumeration surface; subclasses override the data path.
class StoreDecorator : public BlockStore {
 public:
  explicit StoreDecorator(std::unique_ptr<BlockStore> inner);

  bool has(const BlockId& id) const override { return inner_->has(id); }
  std::vector<BlockId> list() const override { return inner_->list(); }
  std::size_t size() const override { return inner_->size(); }
  std::size_t flush() override { return inner_->flush(); }

  BlockStore& inner() { return *inner_; }
  const BlockStore& inner() const { return *inner_; }

 protected:
  std::unique_ptr<BlockStore> inner_;
};

}  // namespace dosn::store
