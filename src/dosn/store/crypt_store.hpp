// AEAD-encrypting decorator: confidentiality and integrity at the storage
// boundary, DECENT-style — the inner store (and thus the replica host's disk)
// only ever sees ciphertext. Composes the repo's ChaCha20-Poly1305 with
// HKDF-derived per-block keys and nonces:
//
//   blockKey = HKDF(master, salt=id, info="dosn.store.crypt.key", 32)
//   nonce    = HKDF-Expand(blockKey,
//                          "dosn.store.crypt.nonce" || seq || plain, 12)
//   envelope = seq (8 bytes LE) || nonce (12 bytes)
//              || AEAD-Seal(blockKey, nonce, plain, aad = id || seq)
//
// The nonce is derived SIV-style from the plaintext as well as a store-wide
// put counter, and stored in the envelope. The guarantee is: a (key, nonce)
// pair repeats only when the same plaintext is re-sealed, in which case the
// identical ciphertext reveals nothing beyond equality — nonce reuse with
// *different* plaintexts cannot occur even if the counter regresses (e.g.
// the highest-seq envelopes were erased, or lost to a crash before an
// AsyncStore flush). On construction the counter still resumes above the
// largest seq found in the inner store, keeping envelopes distinct across a
// cold restart in the common case. The AAD binds each envelope to its block
// id — copying a valid envelope under another id is detected, not decrypted.
//
// Any authentication failure (tampered byte, truncated envelope, wrong
// master key, id swap) throws CorruptBlockError; plaintext is returned only
// when the tag verifies.
#pragma once

#include "dosn/store/block_store.hpp"

namespace dosn::store {

class CryptStore final : public StoreDecorator {
 public:
  CryptStore(std::unique_ptr<BlockStore> inner, util::BytesView masterKey);

  void put(const BlockId& id, util::BytesView data) override;
  std::optional<util::Bytes> get(const BlockId& id) override;
  bool erase(const BlockId& id) override;
  std::string describe() const override {
    return "crypt(" + inner_->describe() + ")";
  }

  /// Envelopes rejected by authentication so far (tamper/truncation/key).
  std::uint64_t rejectedBlocks() const { return rejected_; }
  /// The next put's sequence number (tests pin the restart-recovery scan).
  std::uint64_t nextSeq() const { return nextSeq_; }

 private:
  util::Bytes blockKey(const BlockId& id) const;

  util::Bytes masterKey_;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dosn::store
