// Stack assembly helper: builds the canonical decorator compositions from a
// declarative config so benches, tests, and app wiring construct identical
// stacks. Composition order is fixed (outermost first):
//
//   crypt( cache( async( memory | file ) ) )
//
// — encrypt above the cache so the hot tier holds ciphertext envelopes and
// plaintext never outlives a request; cache above async so reads of recently
// written blocks hit memory; async directly above the durable backend so the
// write-behind queue batches the expensive medium. Any decorator can be
// switched off independently.
#pragma once

#include <filesystem>

#include "dosn/store/async_store.hpp"
#include "dosn/store/block_store.hpp"

namespace dosn::store {

struct StackConfig {
  /// Innermost backend: file-backed when `fileRoot` is set, memory otherwise.
  std::filesystem::path fileRoot;

  /// Write-behind tier; requires `simulator` when enabled.
  bool async = false;
  AsyncConfig asyncConfig;
  sim::Simulator* simulator = nullptr;

  /// LRU cache tier.
  bool cache = false;
  std::size_t cacheBlocks = 1024;
  std::size_t cacheBytes = std::size_t{16} << 20;

  /// AEAD-at-rest tier; requires a non-empty key when enabled.
  bool crypt = false;
  util::Bytes cryptKey;
};

/// Builds the configured stack. Throws StoreError on inconsistent config
/// (async without simulator, crypt without key).
std::unique_ptr<BlockStore> makeStack(const StackConfig& config);

}  // namespace dosn::store
