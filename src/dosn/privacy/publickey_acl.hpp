// Public-key per-member ACL (paper §III-C, Flybynight/PeerSoN style): data is
// "encrypted under the public keys of all group's members"; leaving the group
// just deletes the member's public key from the list (no history rewrite —
// future envelopes simply exclude them).
#pragma once

#include <map>
#include <set>

#include "dosn/pkcrypto/elgamal.hpp"
#include "dosn/privacy/access_controller.hpp"

namespace dosn::privacy {

class PublicKeyAcl final : public AccessController {
 public:
  PublicKeyAcl(const pkcrypto::DlogGroup& group, util::Rng& rng);

  std::string schemeName() const override { return "public-key"; }

  void createGroup(const GroupId& group) override;
  void addMember(const GroupId& group, const UserId& user) override;
  RevocationReport removeMember(const GroupId& group,
                                const UserId& user) override;
  std::vector<UserId> members(const GroupId& group) const override;
  bool isMember(const GroupId& group, const UserId& user) const override;

  Envelope encrypt(const GroupId& group, util::BytesView plaintext,
                   util::Rng& rng) override;
  std::optional<util::Bytes> decrypt(const UserId& reader,
                                     const Envelope& envelope) override;
  std::vector<Envelope> history(const GroupId& group) const override;

 private:
  struct GroupState {
    std::set<UserId> members;
    std::vector<Envelope> history;
  };

  /// Key pair per user, generated lazily on first membership.
  const pkcrypto::ElGamalPrivateKey& userKey(const UserId& user);

  const pkcrypto::DlogGroup& dlog_;
  util::Rng& rng_;
  std::map<GroupId, GroupState> groups_;
  std::map<UserId, pkcrypto::ElGamalPrivateKey> userKeys_;
  std::uint64_t nextSerial_ = 1;
};

}  // namespace dosn::privacy
