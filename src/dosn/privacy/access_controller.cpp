#include "dosn/privacy/access_controller.hpp"

// Interface-only translation unit (keeps one vtable anchor per module).

namespace dosn::privacy {}  // namespace dosn::privacy
