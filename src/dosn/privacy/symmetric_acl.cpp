#include "dosn/privacy/symmetric_acl.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/util/error.hpp"

namespace dosn::privacy {

SymmetricAcl::SymmetricAcl(util::Rng& rng) : rng_(rng) {}

SymmetricAcl::Group& SymmetricAcl::groupRef(const GroupId& group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("SymmetricAcl: unknown group");
  return it->second;
}

const SymmetricAcl::Group& SymmetricAcl::groupRef(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("SymmetricAcl: unknown group");
  return it->second;
}

void SymmetricAcl::createGroup(const GroupId& group) {
  if (groups_.count(group)) throw util::DosnError("SymmetricAcl: group exists");
  Group g;
  g.key = rng_.bytes(32);
  groups_.emplace(group, std::move(g));
}

void SymmetricAcl::addMember(const GroupId& group, const UserId& user) {
  // Adding a user = sharing the current group key with them.
  groupRef(group).members.insert(user);
}

RevocationReport SymmetricAcl::removeMember(const GroupId& group,
                                            const UserId& user) {
  Group& g = groupRef(group);
  g.members.erase(user);
  // New key + full history re-encryption.
  const util::Bytes oldKey = g.key;
  g.key = rng_.bytes(32);
  ++g.epoch;
  RevocationReport report;
  // Every remaining member must receive the new key.
  report.keyOperations = g.members.size();
  for (Envelope& env : g.history) {
    const auto plain = crypto::openWithNonce(oldKey, env.blob);
    if (!plain) throw util::DosnError("SymmetricAcl: corrupt history");
    env.blob = crypto::sealWithNonce(g.key, *plain, rng_);
    ++report.reencryptedEnvelopes;
    report.rewrittenBytes += env.blob.size();
  }
  return report;
}

std::vector<UserId> SymmetricAcl::members(const GroupId& group) const {
  const Group& g = groupRef(group);
  return std::vector<UserId>(g.members.begin(), g.members.end());
}

bool SymmetricAcl::isMember(const GroupId& group, const UserId& user) const {
  return groupRef(group).members.count(user) > 0;
}

Envelope SymmetricAcl::encrypt(const GroupId& group, util::BytesView plaintext,
                               util::Rng& rng) {
  Group& g = groupRef(group);
  Envelope env;
  env.scheme = schemeName();
  env.group = group;
  env.serial = nextSerial_++;
  env.blob = crypto::sealWithNonce(g.key, plaintext, rng);
  g.history.push_back(env);
  return env;
}

std::optional<util::Bytes> SymmetricAcl::decrypt(const UserId& reader,
                                                 const Envelope& envelope) {
  const auto it = groups_.find(envelope.group);
  if (it == groups_.end()) return std::nullopt;
  const Group& g = it->second;
  // Only current members hold the current key.
  if (!g.members.count(reader)) return std::nullopt;
  // Readers fetch the *current* ciphertext for this serial (the stored copy
  // may have been re-encrypted since the caller's Envelope was issued).
  for (const Envelope& stored : g.history) {
    if (stored.serial == envelope.serial) {
      return crypto::openWithNonce(g.key, stored.blob);
    }
  }
  return std::nullopt;
}

std::vector<Envelope> SymmetricAcl::history(const GroupId& group) const {
  return groupRef(group).history;
}

std::uint64_t SymmetricAcl::keyEpoch(const GroupId& group) const {
  return groupRef(group).epoch;
}

}  // namespace dosn::privacy
