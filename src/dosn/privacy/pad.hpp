// Persistent Authenticated Dictionary (paper §III-F: Frientegrity keeps its
// ACLs in PADs, "making it possible to access in logarithmic time").
//
// Implemented as a persistent (path-copying) treap with deterministic
// priorities derived from the key hash, Merkle-hashed so any version's root
// digest authenticates the full contents. Lookups produce proofs verifiable
// against a signed root — exactly the object an untrusted provider serves.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dosn/crypto/sha256.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::privacy {

class Pad {
 public:
  Pad();  // empty dictionary

  /// Persistent update: returns the new version; *this is unchanged.
  Pad insert(const std::string& key, util::Bytes value) const;
  Pad remove(const std::string& key) const;

  std::optional<util::Bytes> find(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return size_; }

  /// Root digest authenticating this version (the thing the provider signs).
  const crypto::Digest& rootHash() const { return rootHash_; }

  /// Height of the treap (log-time witness for experiment E5).
  std::size_t height() const;

  struct ProofStep {
    std::string parentKey;
    crypto::Digest parentValueHash{};
    crypto::Digest siblingHash{};
    bool cameFromLeft = false;  // true if our node is the parent's left child
  };

  /// Everything needed to verify `key -> value` against a root digest.
  struct LookupProof {
    util::Bytes value;
    crypto::Digest leftHash{};   // hashes of the found node's children
    crypto::Digest rightHash{};
    std::vector<ProofStep> steps;  // bottom-up to the root
  };

  /// Membership proof; std::nullopt if the key is absent.
  std::optional<LookupProof> prove(const std::string& key) const;

  /// Verifies a proof against a trusted root digest.
  static bool verify(const crypto::Digest& root, const std::string& key,
                     const LookupProof& proof);

  /// Implementation node (exposed for the .cpp's free helpers only).
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

 private:
  Pad(NodePtr root, std::size_t size);

  NodePtr root_;
  std::size_t size_ = 0;
  crypto::Digest rootHash_{};
};

}  // namespace dosn::privacy
