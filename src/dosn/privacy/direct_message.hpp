// Pairwise friend messaging: the channel the paper's scenarios assume
// ("Alice receives an invitation letter in a packet from Bob"). Built from
// the §IV-A key-establishment story: identities exchanged out-of-band, a DH
// shared secret per friend pair, and AEAD with per-direction monotonic
// counters for confidentiality + integrity + replay protection.
#pragma once

#include <map>
#include <optional>

#include "dosn/pkcrypto/dh.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::privacy {

/// A sealed direct message as it travels through untrusted relays.
struct SealedMessage {
  social::UserId from;
  social::UserId to;
  std::uint64_t counter = 0;  // per (from -> to) direction, monotonic
  util::Bytes box;            // AEAD(key_dir, plaintext, aad = header)

  util::Bytes header() const;
  util::Bytes serialize() const;
  static std::optional<SealedMessage> deserialize(util::BytesView data);
};

/// One user's messaging endpoint. Channels are established from the ElGamal
/// identity keys in the registry (their DH shape: y = g^x).
class MessageChannel {
 public:
  MessageChannel(const pkcrypto::DlogGroup& group,
                 const social::Keyring& keyring,
                 const social::IdentityRegistry& registry);

  /// Seals a message for a friend. Throws if the peer isn't registered.
  SealedMessage seal(const social::UserId& to, util::BytesView plaintext,
                     util::Rng& rng);

  /// Opens a received message: verifies the AEAD under the pairwise key and
  /// enforces the replay window (counters must strictly increase).
  /// std::nullopt on any failure.
  std::optional<util::Bytes> open(const SealedMessage& message);

 private:
  /// Directional key: HKDF(dh(me, peer), "dm:" + sender + ">" + receiver).
  util::Bytes directionKey(const social::UserId& sender,
                           const social::UserId& receiver);

  const pkcrypto::DlogGroup& group_;
  const social::Keyring& keyring_;
  const social::IdentityRegistry& registry_;
  std::map<social::UserId, util::Bytes> sharedSecrets_;  // peer -> raw DH
  std::map<social::UserId, std::uint64_t> sendCounter_;
  std::map<social::UserId, std::uint64_t> lastReceived_;
};

}  // namespace dosn::privacy
