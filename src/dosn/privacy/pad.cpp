#include "dosn/privacy/pad.hpp"

#include "dosn/util/codec.hpp"

namespace dosn::privacy {

namespace {

crypto::Digest emptyHash() { return crypto::sha256({}); }

std::uint64_t keyPriority(const std::string& key) {
  const crypto::Digest d = crypto::sha256(util::toBytes(key));
  std::uint64_t p = 0;
  for (int i = 0; i < 8; ++i) p = (p << 8) | d[static_cast<std::size_t>(i)];
  return p;
}

crypto::Digest hashValue(util::BytesView value) { return crypto::sha256(value); }

}  // namespace

struct Pad::Node {
  std::string key;
  util::Bytes value;
  std::uint64_t priority;
  NodePtr left;
  NodePtr right;
  crypto::Digest hash;
};

namespace {

using NodePtr = std::shared_ptr<const Pad::Node>;

crypto::Digest childHash(const NodePtr& node) {
  return node ? node->hash : emptyHash();
}

crypto::Digest nodeHash(const std::string& key, util::BytesView value,
                        const NodePtr& left, const NodePtr& right) {
  util::Writer w;
  w.str(key);
  w.raw(util::BytesView(hashValue(value)));
  w.raw(util::BytesView(childHash(left)));
  w.raw(util::BytesView(childHash(right)));
  return crypto::sha256(w.buffer());
}

NodePtr makeNode(std::string key, util::Bytes value, NodePtr left,
                 NodePtr right) {
  auto node = std::make_shared<Pad::Node>();
  node->key = std::move(key);
  node->value = std::move(value);
  node->priority = keyPriority(node->key);
  node->left = std::move(left);
  node->right = std::move(right);
  node->hash = nodeHash(node->key, node->value, node->left, node->right);
  return node;
}

NodePtr rebuild(const NodePtr& node, NodePtr left, NodePtr right) {
  return makeNode(node->key, node->value, std::move(left), std::move(right));
}

NodePtr insertNode(const NodePtr& node, const std::string& key,
                   const util::Bytes& value, bool& added) {
  if (!node) {
    added = true;
    return makeNode(key, value, nullptr, nullptr);
  }
  if (key == node->key) {
    added = false;
    return makeNode(key, value, node->left, node->right);
  }
  if (key < node->key) {
    NodePtr newLeft = insertNode(node->left, key, value, added);
    // Restore the heap property by rotating right if needed.
    if (newLeft->priority > node->priority) {
      return rebuild(newLeft, newLeft->left,
                     rebuild(node, newLeft->right, node->right));
    }
    return rebuild(node, std::move(newLeft), node->right);
  }
  NodePtr newRight = insertNode(node->right, key, value, added);
  if (newRight->priority > node->priority) {
    return rebuild(newRight, rebuild(node, node->left, newRight->left),
                   newRight->right);
  }
  return rebuild(node, node->left, std::move(newRight));
}

/// Merges two treaps where every key in `a` < every key in `b`.
NodePtr mergeNodes(const NodePtr& a, const NodePtr& b) {
  if (!a) return b;
  if (!b) return a;
  if (a->priority >= b->priority) {
    return rebuild(a, a->left, mergeNodes(a->right, b));
  }
  return rebuild(b, mergeNodes(a, b->left), b->right);
}

NodePtr removeNode(const NodePtr& node, const std::string& key, bool& removed) {
  if (!node) {
    removed = false;
    return nullptr;
  }
  if (key == node->key) {
    removed = true;
    return mergeNodes(node->left, node->right);
  }
  if (key < node->key) {
    NodePtr newLeft = removeNode(node->left, key, removed);
    if (!removed) return node;
    return rebuild(node, std::move(newLeft), node->right);
  }
  NodePtr newRight = removeNode(node->right, key, removed);
  if (!removed) return node;
  return rebuild(node, node->left, std::move(newRight));
}

std::size_t nodeHeight(const NodePtr& node) {
  if (!node) return 0;
  return 1 + std::max(nodeHeight(node->left), nodeHeight(node->right));
}

}  // namespace

Pad::Pad() : rootHash_(emptyHash()) {}

Pad::Pad(NodePtr root, std::size_t size)
    : root_(std::move(root)),
      size_(size),
      rootHash_(root_ ? root_->hash : emptyHash()) {}

Pad Pad::insert(const std::string& key, util::Bytes value) const {
  bool added = false;
  NodePtr newRoot = insertNode(root_, key, value, added);
  return Pad(std::move(newRoot), size_ + (added ? 1 : 0));
}

Pad Pad::remove(const std::string& key) const {
  bool removed = false;
  NodePtr newRoot = removeNode(root_, key, removed);
  if (!removed) return *this;
  return Pad(std::move(newRoot), size_ - 1);
}

std::optional<util::Bytes> Pad::find(const std::string& key) const {
  const Node* node = root_.get();
  while (node) {
    if (key == node->key) return node->value;
    node = (key < node->key) ? node->left.get() : node->right.get();
  }
  return std::nullopt;
}

bool Pad::contains(const std::string& key) const {
  return find(key).has_value();
}

std::size_t Pad::height() const { return nodeHeight(root_); }

std::optional<Pad::LookupProof> Pad::prove(const std::string& key) const {
  // Record the path root -> node, then emit steps bottom-up.
  std::vector<const Node*> path;
  const Node* node = root_.get();
  while (node) {
    path.push_back(node);
    if (key == node->key) break;
    node = (key < node->key) ? node->left.get() : node->right.get();
  }
  if (!node || node->key != key) return std::nullopt;

  LookupProof proof;
  proof.value = node->value;
  proof.leftHash = childHash(node->left);
  proof.rightHash = childHash(node->right);
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    const Node* parent = path[i];
    const Node* child = path[i + 1];
    ProofStep step;
    step.parentKey = parent->key;
    step.parentValueHash = hashValue(parent->value);
    step.cameFromLeft = parent->left.get() == child;
    step.siblingHash =
        step.cameFromLeft ? childHash(parent->right) : childHash(parent->left);
    proof.steps.push_back(step);
  }
  return proof;
}

bool Pad::verify(const crypto::Digest& root, const std::string& key,
                 const LookupProof& proof) {
  // Recompute the found node's hash, then fold the path upward.
  util::Writer w;
  w.str(key);
  w.raw(util::BytesView(hashValue(proof.value)));
  w.raw(util::BytesView(proof.leftHash));
  w.raw(util::BytesView(proof.rightHash));
  crypto::Digest h = crypto::sha256(w.buffer());
  for (const ProofStep& step : proof.steps) {
    util::Writer sw;
    sw.str(step.parentKey);
    sw.raw(util::BytesView(step.parentValueHash));
    if (step.cameFromLeft) {
      sw.raw(util::BytesView(h));
      sw.raw(util::BytesView(step.siblingHash));
    } else {
      sw.raw(util::BytesView(step.siblingHash));
      sw.raw(util::BytesView(h));
    }
    h = crypto::sha256(sw.buffer());
  }
  return h == root;
}

}  // namespace dosn::privacy
