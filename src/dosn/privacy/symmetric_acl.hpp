// Symmetric-key group ACL (paper §III-B): one shared key per group; adding a
// member shares the key; revocation creates a new key and re-encrypts the
// whole retained history ("for the revocation, we need to create a new key
// and re-encrypt the whole data").
#pragma once

#include <map>
#include <set>

#include "dosn/privacy/access_controller.hpp"

namespace dosn::privacy {

class SymmetricAcl final : public AccessController {
 public:
  explicit SymmetricAcl(util::Rng& rng);

  std::string schemeName() const override { return "symmetric"; }

  void createGroup(const GroupId& group) override;
  void addMember(const GroupId& group, const UserId& user) override;
  RevocationReport removeMember(const GroupId& group,
                                const UserId& user) override;
  std::vector<UserId> members(const GroupId& group) const override;
  bool isMember(const GroupId& group, const UserId& user) const override;

  Envelope encrypt(const GroupId& group, util::BytesView plaintext,
                   util::Rng& rng) override;
  std::optional<util::Bytes> decrypt(const UserId& reader,
                                     const Envelope& envelope) override;
  std::vector<Envelope> history(const GroupId& group) const override;

  /// Current key epoch of a group (bumped by every revocation).
  std::uint64_t keyEpoch(const GroupId& group) const;

 private:
  struct Group {
    util::Bytes key;
    std::uint64_t epoch = 0;
    std::set<UserId> members;
    std::vector<Envelope> history;
  };

  Group& groupRef(const GroupId& group);
  const Group& groupRef(const GroupId& group) const;

  util::Rng& rng_;
  std::map<GroupId, Group> groups_;
  std::uint64_t nextSerial_ = 1;
};

}  // namespace dosn::privacy
