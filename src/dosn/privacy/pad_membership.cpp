#include "dosn/privacy/pad_membership.hpp"

#include "dosn/util/codec.hpp"

namespace dosn::privacy {

util::Bytes SignedAclRoot::signedBytes() const {
  util::Writer w;
  w.u64(version);
  w.raw(util::BytesView(root));
  return w.take();
}

PadAcl::PadAcl(const pkcrypto::DlogGroup& group, const social::Keyring& owner)
    : group_(group), owner_(owner) {
  signedRoot_.version = 0;
  signedRoot_.root = pad_.rootHash();
  // The initial (empty) root is signed lazily on the first mutation; readers
  // of an untouched ACL have nothing to verify against yet.
}

void PadAcl::resign(util::Rng& rng) {
  ++version_;
  signedRoot_.version = version_;
  signedRoot_.root = pad_.rootHash();
  signedRoot_.signature = pkcrypto::schnorrSign(
      group_, owner_.signing, signedRoot_.signedBytes(), rng);
}

void PadAcl::grant(const social::UserId& member, const std::string& permission,
                   util::Rng& rng) {
  pad_ = pad_.insert(member, util::toBytes(permission));
  resign(rng);
}

void PadAcl::revoke(const social::UserId& member, util::Rng& rng) {
  pad_ = pad_.remove(member);
  resign(rng);
}

std::optional<MembershipProof> PadAcl::proveMembership(
    const social::UserId& member) const {
  const auto proof = pad_.prove(member);
  if (!proof) return std::nullopt;
  return MembershipProof{signedRoot_, *proof};
}

std::optional<std::string> verifyMembership(
    const pkcrypto::DlogGroup& group, const pkcrypto::SchnorrPublicKey& ownerKey,
    const social::UserId& member, const MembershipProof& attestation) {
  if (!pkcrypto::schnorrVerify(group, ownerKey,
                               attestation.signedRoot.signedBytes(),
                               attestation.signedRoot.signature)) {
    return std::nullopt;
  }
  if (!Pad::verify(attestation.signedRoot.root, member, attestation.proof)) {
    return std::nullopt;
  }
  return util::toString(attestation.proof.value);
}

}  // namespace dosn::privacy
