#include "dosn/privacy/hybrid_acl.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::privacy {

std::string wrapSchemeName(WrapScheme scheme) {
  switch (scheme) {
    case WrapScheme::kPublicKey: return "pk";
    case WrapScheme::kCpAbe: return "cp-abe";
    case WrapScheme::kIbbe: return "ibbe";
  }
  throw util::DosnError("wrapSchemeName: bad scheme");
}

HybridAcl::HybridAcl(const pkcrypto::DlogGroup& group, util::Rng& rng,
                     WrapScheme wrap)
    : dlog_(group),
      rng_(rng),
      wrap_(wrap),
      abeAuthority_(group, rng),
      pkg_(group, rng) {}

HybridAcl::GroupState& HybridAcl::groupRef(const GroupId& group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("HybridAcl: unknown group");
  return it->second;
}

const HybridAcl::GroupState& HybridAcl::groupRef(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("HybridAcl: unknown group");
  return it->second;
}

const pkcrypto::ElGamalPrivateKey& HybridAcl::userKey(const UserId& user) {
  const auto it = userKeys_.find(user);
  if (it != userKeys_.end()) return it->second;
  return userKeys_.emplace(user, pkcrypto::elgamalGenerate(dlog_, rng_))
      .first->second;
}

std::string HybridAcl::epochAttribute(const GroupId& group) const {
  return group + "#" + std::to_string(groupRef(group).epoch);
}

void HybridAcl::createGroup(const GroupId& group) {
  if (groups_.count(group)) throw util::DosnError("HybridAcl: group exists");
  groups_.emplace(group, GroupState{});
}

void HybridAcl::addMember(const GroupId& group, const UserId& user) {
  userKey(user);
  groupRef(group).members.insert(user);
}

RevocationReport HybridAcl::removeMember(const GroupId& group,
                                         const UserId& user) {
  GroupState& state = groupRef(group);
  state.members.erase(user);
  RevocationReport report;
  if (wrap_ == WrapScheme::kCpAbe) {
    ++state.epoch;  // attribute re-keying
    report.keyOperations = state.members.size();
  } else if (wrap_ == WrapScheme::kPublicKey) {
    report.keyOperations = 1;  // list edit
  }
  // Forward security for retained data: fresh data keys + re-wrap. The
  // asymmetric work is bounded by the 32-byte key, not the payload — the
  // hybrid advantage the paper describes.
  for (Envelope& env : state.history) {
    util::Reader r(env.blob);
    const util::Bytes wrapped = r.bytes();
    const util::Bytes payloadBox = r.bytes();
    // The group owner (who runs revocation) can always unwrap its own data.
    std::optional<util::Bytes> dataKey;
    for (const UserId& member : state.members) {
      dataKey = unwrapKey(member, group, wrapped);
      if (dataKey) break;
    }
    if (!dataKey && !state.members.empty()) {
      throw util::DosnError("HybridAcl: cannot unwrap own history");
    }
    if (!dataKey) break;  // no members left; history stays sealed
    const auto plain = crypto::openWithNonce(*dataKey, payloadBox);
    if (!plain) throw util::DosnError("HybridAcl: corrupt history");
    const util::Bytes newKey = rng_.bytes(32);
    util::Writer w;
    w.bytes(wrapKey(group, newKey, rng_));
    w.bytes(crypto::sealWithNonce(newKey, *plain, rng_));
    env.blob = w.take();
    ++report.reencryptedEnvelopes;
    report.rewrittenBytes += env.blob.size();
  }
  return report;
}

std::vector<UserId> HybridAcl::members(const GroupId& group) const {
  const GroupState& state = groupRef(group);
  return std::vector<UserId>(state.members.begin(), state.members.end());
}

bool HybridAcl::isMember(const GroupId& group, const UserId& user) const {
  return groupRef(group).members.count(user) > 0;
}

util::Bytes HybridAcl::wrapKey(const GroupId& group, util::BytesView dataKey,
                               util::Rng& rng) {
  const GroupState& state = groupRef(group);
  util::Writer w;
  switch (wrap_) {
    case WrapScheme::kPublicKey: {
      w.u32(static_cast<std::uint32_t>(state.members.size()));
      for (const UserId& member : state.members) {
        w.str(member);
        w.bytes(pkcrypto::elgamalEncrypt(dlog_, userKey(member).pub, dataKey, rng));
      }
      break;
    }
    case WrapScheme::kCpAbe: {
      const policy::Policy p = policy::Policy::attribute(epochAttribute(group));
      w.bytes(abe::cpabeEncrypt(dlog_, abeAuthority_.publicKeysFor(p), p,
                                dataKey, rng)
                  .serialize());
      break;
    }
    case WrapScheme::kIbbe: {
      std::vector<std::string> recipients(state.members.begin(),
                                          state.members.end());
      std::map<std::string, bignum::BigUint> directory;
      for (const auto& id : recipients) {
        directory.emplace(id, pkg_.identityPublicKey(id));
      }
      w.bytes(
          ibbe::ibbeEncrypt(dlog_, directory, recipients, dataKey, rng).serialize());
      break;
    }
  }
  return w.take();
}

std::optional<util::Bytes> HybridAcl::unwrapKey(const UserId& reader,
                                                const GroupId& group,
                                                util::BytesView wrapped) {
  try {
    util::Reader r(wrapped);
    switch (wrap_) {
      case WrapScheme::kPublicKey: {
        const auto keyIt = userKeys_.find(reader);
        if (keyIt == userKeys_.end()) return std::nullopt;
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::string member = r.str();
          util::Bytes ct = r.bytes();
          if (member == reader) {
            return pkcrypto::elgamalDecrypt(dlog_, keyIt->second, ct);
          }
        }
        return std::nullopt;
      }
      case WrapScheme::kCpAbe: {
        const auto ct = abe::CpAbeCiphertext::deserialize(r.bytes());
        if (!ct) return std::nullopt;
        const GroupState& state = groupRef(group);
        if (!state.members.count(reader)) return std::nullopt;
        const auto key = abeAuthority_.keyGen({epochAttribute(group)});
        return abe::cpabeDecrypt(dlog_, key, *ct);
      }
      case WrapScheme::kIbbe: {
        const auto ct = ibbe::IbbeCiphertext::deserialize(r.bytes());
        if (!ct) return std::nullopt;
        return ibbe::ibbeDecrypt(dlog_, pkg_.extract(reader), *ct);
      }
    }
    return std::nullopt;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

Envelope HybridAcl::encrypt(const GroupId& group, util::BytesView plaintext,
                            util::Rng& rng) {
  GroupState& state = groupRef(group);
  const util::Bytes dataKey = rng.bytes(32);
  util::Writer w;
  w.bytes(wrapKey(group, dataKey, rng));
  w.bytes(crypto::sealWithNonce(dataKey, plaintext, rng));
  Envelope env;
  env.scheme = schemeName();
  env.group = group;
  env.serial = nextSerial_++;
  env.blob = w.take();
  state.history.push_back(env);
  return env;
}

std::optional<util::Bytes> HybridAcl::decrypt(const UserId& reader,
                                              const Envelope& envelope) {
  const auto it = groups_.find(envelope.group);
  if (it == groups_.end()) return std::nullopt;
  // Fetch the current ciphertext for the serial (revocation may have
  // rewritten it).
  const util::Bytes* blob = &envelope.blob;
  for (const Envelope& stored : it->second.history) {
    if (stored.serial == envelope.serial) {
      blob = &stored.blob;
      break;
    }
  }
  try {
    util::Reader r(*blob);
    const util::Bytes wrapped = r.bytes();
    const util::Bytes payloadBox = r.bytes();
    const auto dataKey = unwrapKey(reader, envelope.group, wrapped);
    if (!dataKey) return std::nullopt;
    return crypto::openWithNonce(*dataKey, payloadBox);
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

std::vector<Envelope> HybridAcl::history(const GroupId& group) const {
  return groupRef(group).history;
}

}  // namespace dosn::privacy
