#include "dosn/privacy/ibbe_acl.hpp"

#include "dosn/util/error.hpp"

namespace dosn::privacy {

IbbeAcl::IbbeAcl(const pkcrypto::DlogGroup& group, util::Rng& rng)
    : dlog_(group), pkg_(group, rng) {}

void IbbeAcl::createGroup(const GroupId& group) {
  if (groups_.count(group)) throw util::DosnError("IbbeAcl: group exists");
  groups_.emplace(group, GroupState{});
}

void IbbeAcl::addMember(const GroupId& group, const UserId& user) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("IbbeAcl: unknown group");
  it->second.members.insert(user);
}

RevocationReport IbbeAcl::removeMember(const GroupId& group,
                                       const UserId& user) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("IbbeAcl: unknown group");
  it->second.members.erase(user);
  // No re-keying, no re-encryption: the next broadcast just omits them.
  return RevocationReport{0, 0, 0};
}

std::vector<UserId> IbbeAcl::members(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("IbbeAcl: unknown group");
  return std::vector<UserId>(it->second.members.begin(),
                             it->second.members.end());
}

bool IbbeAcl::isMember(const GroupId& group, const UserId& user) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.members.count(user) > 0;
}

Envelope IbbeAcl::encrypt(const GroupId& group, util::BytesView plaintext,
                          util::Rng& rng) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("IbbeAcl: unknown group");
  std::vector<std::string> recipients(it->second.members.begin(),
                                      it->second.members.end());
  if (recipients.empty()) throw util::DosnError("IbbeAcl: empty group");
  std::map<std::string, bignum::BigUint> directory;
  for (const auto& id : recipients) {
    directory.emplace(id, pkg_.identityPublicKey(id));
  }
  Envelope env;
  env.scheme = schemeName();
  env.group = group;
  env.serial = nextSerial_++;
  env.blob = ibbe::ibbeEncrypt(dlog_, directory, recipients, plaintext, rng)
                 .serialize();
  it->second.history.push_back(env);
  return env;
}

std::optional<util::Bytes> IbbeAcl::decrypt(const UserId& reader,
                                            const Envelope& envelope) {
  const auto ct = ibbe::IbbeCiphertext::deserialize(envelope.blob);
  if (!ct) return std::nullopt;
  return ibbe::ibbeDecrypt(dlog_, pkg_.extract(reader), *ct);
}

std::vector<Envelope> IbbeAcl::history(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("IbbeAcl: unknown group");
  return it->second.history;
}

}  // namespace dosn::privacy
