// Application access control (paper §II-A: Persona "gave users this autonomy
// to decide who can see their private data, even for the applications, with
// fine-grained policies"; §VI "protection of data from API").
//
// A capability token is a user-signed grant: (app, resource scope, rights,
// expiry). Applications present tokens to data holders, who verify the
// user's signature and the scope — no "install = full access" ambient
// authority. Revocation is by token id, checked before the signature.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::privacy {

enum class AppRight : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

/// A user-signed, scope-limited grant to an application.
struct CapabilityToken {
  std::uint64_t id = 0;           // per-user unique (revocation handle)
  social::UserId owner;           // granting user
  std::string app;                // application identifier
  std::string scope;              // resource prefix, e.g. "alice/photos"
  AppRight rights = AppRight::kRead;
  std::uint64_t expiresAt = 0;    // timestamp; 0 = never
  pkcrypto::SchnorrSignature signature;

  util::Bytes signedBytes() const;
  util::Bytes serialize() const;
  static std::optional<CapabilityToken> deserialize(util::BytesView data);
};

/// User side: issue and revoke grants.
class CapabilityIssuer {
 public:
  CapabilityIssuer(const pkcrypto::DlogGroup& group,
                   const social::Keyring& owner)
      : group_(group), owner_(owner) {}

  CapabilityToken issue(const std::string& app, const std::string& scope,
                        AppRight rights, std::uint64_t expiresAt,
                        util::Rng& rng);

  /// Adds the token id to the owner's revocation list.
  void revoke(std::uint64_t tokenId) { revoked_.insert(tokenId); }
  const std::set<std::uint64_t>& revocationList() const { return revoked_; }

 private:
  const pkcrypto::DlogGroup& group_;
  const social::Keyring& owner_;
  std::uint64_t nextId_ = 1;
  std::set<std::uint64_t> revoked_;
};

/// Data-holder side: decide an app's request against a presented token.
/// `resource` must fall under the token scope ("alice/photos" covers
/// "alice/photos/2024/img1"); `now` checks expiry; the owner's registered
/// key checks authenticity; the revocation list checks liveness.
bool checkCapability(const pkcrypto::DlogGroup& group,
                     const social::IdentityRegistry& registry,
                     const CapabilityToken& token,
                     const std::set<std::uint64_t>& revocationList,
                     const std::string& app, const std::string& resource,
                     AppRight needed, std::uint64_t now);

}  // namespace dosn::privacy
