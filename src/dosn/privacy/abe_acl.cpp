#include "dosn/privacy/abe_acl.hpp"

#include "dosn/util/error.hpp"

namespace dosn::privacy {

AbeAcl::AbeAcl(const pkcrypto::DlogGroup& group, util::Rng& rng)
    : dlog_(group), rng_(rng), authority_(group, rng) {}

std::string AbeAcl::epochAttribute(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  return group + "#" + std::to_string(it->second.epoch);
}

policy::Policy AbeAcl::qualifyPolicy(const policy::Policy& p) const {
  return p.mapAttributes([this](const std::string& name) {
    return epochAttribute(name);
  });
}

abe::CpAbeUserKey AbeAcl::readerKey(const UserId& reader) const {
  std::set<std::string> attrs;
  for (const auto& [groupName, state] : groups_) {
    if (state.members.count(reader)) {
      attrs.insert(groupName + "#" + std::to_string(state.epoch));
    }
  }
  return authority_.keyGen(attrs);
}

void AbeAcl::createGroup(const GroupId& group) {
  if (groups_.count(group)) throw util::DosnError("AbeAcl: group exists");
  groups_.emplace(group, GroupState{});
}

void AbeAcl::addMember(const GroupId& group, const UserId& user) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  it->second.members.insert(user);
}

RevocationReport AbeAcl::removeMember(const GroupId& group,
                                      const UserId& user) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  GroupState& state = it->second;
  state.members.erase(user);

  // Re-keying: rotate the attribute epoch; every remaining member needs a
  // fresh key component for the new attribute.
  ++state.epoch;
  RevocationReport report;
  report.keyOperations = state.members.size();

  // Re-encrypt the retained history under the new epoch attribute.
  const policy::Policy newPolicy =
      policy::Policy::attribute(epochAttribute(group));
  const auto pubKeys = authority_.publicKeysFor(newPolicy);
  // The authority (as re-encryption proxy) can always open history: it
  // regenerates a key for the *previous* epoch attribute.
  for (Envelope& env : state.history) {
    const auto ct = abe::CpAbeCiphertext::deserialize(env.blob);
    if (!ct) throw util::DosnError("AbeAcl: corrupt history");
    const auto oldAttrs = ct->accessPolicy.attributes();
    const auto oldKey =
        authority_.keyGen(std::set<std::string>(oldAttrs.begin(), oldAttrs.end()));
    const auto plain = abe::cpabeDecrypt(dlog_, oldKey, *ct);
    if (!plain) throw util::DosnError("AbeAcl: history decrypt failed");
    env.blob =
        abe::cpabeEncrypt(dlog_, pubKeys, newPolicy, *plain, rng_).serialize();
    ++report.reencryptedEnvelopes;
    report.rewrittenBytes += env.blob.size();
  }
  return report;
}

std::vector<UserId> AbeAcl::members(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  return std::vector<UserId>(it->second.members.begin(),
                             it->second.members.end());
}

bool AbeAcl::isMember(const GroupId& group, const UserId& user) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.members.count(user) > 0;
}

Envelope AbeAcl::encrypt(const GroupId& group, util::BytesView plaintext,
                         util::Rng& rng) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  const policy::Policy p = policy::Policy::attribute(epochAttribute(group));
  const auto pubKeys = authority_.publicKeysFor(p);
  Envelope env;
  env.scheme = schemeName();
  env.group = group;
  env.serial = nextSerial_++;
  env.blob = abe::cpabeEncrypt(dlog_, pubKeys, p, plaintext, rng).serialize();
  it->second.history.push_back(env);
  return env;
}

Envelope AbeAcl::encryptWithPolicy(const policy::Policy& accessPolicy,
                                   util::BytesView plaintext, util::Rng& rng) {
  const policy::Policy qualified = qualifyPolicy(accessPolicy);
  const auto pubKeys = authority_.publicKeysFor(qualified);
  Envelope env;
  env.scheme = schemeName();
  env.group = "";  // cross-group policy envelope
  env.serial = nextSerial_++;
  env.blob =
      abe::cpabeEncrypt(dlog_, pubKeys, qualified, plaintext, rng).serialize();
  return env;
}

std::optional<util::Bytes> AbeAcl::decrypt(const UserId& reader,
                                           const Envelope& envelope) {
  // Readers fetch the current ciphertext for the serial where history is
  // retained (it may have been re-encrypted since).
  const util::Bytes* blob = &envelope.blob;
  if (!envelope.group.empty()) {
    const auto it = groups_.find(envelope.group);
    if (it == groups_.end()) return std::nullopt;
    for (const Envelope& stored : it->second.history) {
      if (stored.serial == envelope.serial) {
        blob = &stored.blob;
        break;
      }
    }
  }
  const auto ct = abe::CpAbeCiphertext::deserialize(*blob);
  if (!ct) return std::nullopt;
  return abe::cpabeDecrypt(dlog_, readerKey(reader), *ct);
}

std::vector<Envelope> AbeAcl::history(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  return it->second.history;
}

std::uint64_t AbeAcl::attributeEpoch(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("AbeAcl: unknown group");
  return it->second.epoch;
}

}  // namespace dosn::privacy
