// The common access-control interface every §III scheme implements:
// group management (create / add / revoke) plus encrypt-to-group and
// member decryption. Controllers also retain the envelopes they published so
// revocation can honestly account for the re-encryption work each scheme
// requires (the paper's core cost comparison between §III-B..F).
//
// Each concrete controller internally stores the per-user key material it
// issues at addMember time — modeling each user's client-side key store, so
// decrypt(reader, ...) runs exactly the computation that user's client would.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dosn/social/identity.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::privacy {

using social::UserId;

using GroupId = std::string;

/// An encrypted object as stored/replicated in the DOSN.
struct Envelope {
  std::string scheme;   // producing controller's name
  GroupId group;
  std::uint64_t serial = 0;  // controller-assigned id (stable across re-encryption)
  util::Bytes blob;
};

/// Work performed by a revocation — the measurable quantities behind
/// experiment E2.
struct RevocationReport {
  std::size_t reencryptedEnvelopes = 0;  // history items rewritten
  std::size_t rewrittenBytes = 0;        // ciphertext bytes rewritten
  std::size_t keyOperations = 0;         // keys issued/replaced/distributed
};

class AccessController {
 public:
  virtual ~AccessController() = default;

  virtual std::string schemeName() const = 0;

  virtual void createGroup(const GroupId& group) = 0;
  virtual void addMember(const GroupId& group, const UserId& user) = 0;
  /// Removes a member, performing whatever re-keying / re-encryption the
  /// scheme requires so the revoked user cannot read group data anymore
  /// (modulo copies they already made — paper §III-B's caveat).
  virtual RevocationReport removeMember(const GroupId& group,
                                        const UserId& user) = 0;
  virtual std::vector<UserId> members(const GroupId& group) const = 0;
  virtual bool isMember(const GroupId& group, const UserId& user) const = 0;

  /// Encrypts to the group and retains the envelope in the group's history.
  virtual Envelope encrypt(const GroupId& group, util::BytesView plaintext,
                           util::Rng& rng) = 0;

  /// Attempts decryption as `reader`; std::nullopt if unauthorized (or the
  /// envelope was re-encrypted away after the reader's revocation).
  virtual std::optional<util::Bytes> decrypt(const UserId& reader,
                                             const Envelope& envelope) = 0;

  /// Retained history (current ciphertext for each serial, in issue order).
  virtual std::vector<Envelope> history(const GroupId& group) const = 0;
};

}  // namespace dosn::privacy
