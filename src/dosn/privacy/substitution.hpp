// Information substitution (paper §III-A): hide real data from the provider
// by serving fakes.
//
// Two mechanisms from the survey:
//  - VPSN-style fake profiles (Conti et al. [11]): the provider stores a
//    pseudo profile; trusted friends fetch the real one through a side
//    channel (modeled by FakeProfileService).
//  - NOYB-style atom substitution (Guha et al. [23]): profile values are
//    split into typed atoms; each user's stored atom index is encrypted with
//    a keyed rotation over a *public* dictionary, so the provider sees a
//    plausible (but wrong) atom and key holders invert the substitution.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dosn/social/content.hpp"
#include "dosn/util/bytes.hpp"

namespace dosn::privacy {

using social::Profile;
using social::UserId;

/// VPSN: provider sees the fake; friends holding the side channel see truth.
class FakeProfileService {
 public:
  /// Publishes `fake` to the provider and retains `real` for friends.
  void publish(const UserId& user, Profile real, Profile fake,
               const std::vector<UserId>& friends);

  /// What the (curious) service provider observes.
  std::optional<Profile> providerView(const UserId& user) const;

  /// What `viewer` sees: the real profile if they are a trusted friend of
  /// `user`, otherwise the provider's fake.
  std::optional<Profile> view(const UserId& viewer, const UserId& user) const;

 private:
  struct Entry {
    Profile real;
    Profile fake;
    std::vector<UserId> friends;
  };
  std::map<UserId, Entry> entries_;
};

/// NOYB: a public dictionary of atoms per class ("first-name", "city", ...).
class AtomDictionary {
 public:
  /// Registers the atom universe for a class. Order defines indices.
  void defineClass(const std::string& atomClass,
                   std::vector<std::string> atoms);

  /// Index of an atom within its class; std::nullopt if unknown.
  std::optional<std::size_t> indexOf(const std::string& atomClass,
                                     const std::string& atom) const;
  /// Atom at an index.
  std::optional<std::string> atomAt(const std::string& atomClass,
                                    std::size_t index) const;
  std::size_t classSize(const std::string& atomClass) const;

  /// The substituted (provider-visible) atom for a real atom under `key`:
  /// a keyed rotation of the index within the public dictionary.
  std::optional<std::string> substitute(util::BytesView key,
                                        const std::string& atomClass,
                                        const std::string& realAtom) const;

  /// Inverts substitute() for key holders.
  std::optional<std::string> recover(util::BytesView key,
                                     const std::string& atomClass,
                                     const std::string& storedAtom) const;

 private:
  std::size_t shiftFor(util::BytesView key, const std::string& atomClass) const;

  std::map<std::string, std::vector<std::string>> classes_;
};

}  // namespace dosn::privacy
