// Hybrid encryption ACL (paper §III-F): "combines the convenience of a
// public-key encryption with the high speed of a symmetric-key encryption" —
// the payload is sealed once under a fresh symmetric data key, and only that
// 32-byte key is wrapped asymmetrically for the audience. The wrap layer is
// pluggable, mirroring the survey's examples: per-member public keys
// (Frientegrity/Hummingbird style), CP-ABE (Persona/Cachet), or IBBE.
#pragma once

#include <map>
#include <set>

#include "dosn/abe/cpabe.hpp"
#include "dosn/ibbe/ibbe.hpp"
#include "dosn/pkcrypto/elgamal.hpp"
#include "dosn/privacy/access_controller.hpp"

namespace dosn::privacy {

enum class WrapScheme {
  kPublicKey,  // wrap per member under ElGamal
  kCpAbe,      // wrap once under the group attribute
  kIbbe,       // wrap per member via identity keys
};

std::string wrapSchemeName(WrapScheme scheme);

class HybridAcl final : public AccessController {
 public:
  HybridAcl(const pkcrypto::DlogGroup& group, util::Rng& rng, WrapScheme wrap);

  std::string schemeName() const override {
    return "hybrid+" + wrapSchemeName(wrap_);
  }

  void createGroup(const GroupId& group) override;
  void addMember(const GroupId& group, const UserId& user) override;
  RevocationReport removeMember(const GroupId& group,
                                const UserId& user) override;
  std::vector<UserId> members(const GroupId& group) const override;
  bool isMember(const GroupId& group, const UserId& user) const override;

  Envelope encrypt(const GroupId& group, util::BytesView plaintext,
                   util::Rng& rng) override;
  std::optional<util::Bytes> decrypt(const UserId& reader,
                                     const Envelope& envelope) override;
  std::vector<Envelope> history(const GroupId& group) const override;

 private:
  struct GroupState {
    std::uint64_t epoch = 0;  // CP-ABE attribute epoch
    std::set<UserId> members;
    std::vector<Envelope> history;
  };

  GroupState& groupRef(const GroupId& group);
  const GroupState& groupRef(const GroupId& group) const;
  const pkcrypto::ElGamalPrivateKey& userKey(const UserId& user);
  std::string epochAttribute(const GroupId& group) const;

  /// Wraps the data key for the group's current membership.
  util::Bytes wrapKey(const GroupId& group, util::BytesView dataKey,
                      util::Rng& rng);
  /// Unwraps as `reader`; std::nullopt if not addressed.
  std::optional<util::Bytes> unwrapKey(const UserId& reader,
                                       const GroupId& group,
                                       util::BytesView wrapped);

  const pkcrypto::DlogGroup& dlog_;
  util::Rng& rng_;
  WrapScheme wrap_;
  abe::CpAbeAuthority abeAuthority_;
  ibbe::Pkg pkg_;
  std::map<UserId, pkcrypto::ElGamalPrivateKey> userKeys_;
  std::map<GroupId, GroupState> groups_;
  std::uint64_t nextSerial_ = 1;
};

}  // namespace dosn::privacy
