#include "dosn/privacy/substitution.hpp"

#include <algorithm>

#include "dosn/crypto/hmac.hpp"

namespace dosn::privacy {

void FakeProfileService::publish(const UserId& user, Profile real, Profile fake,
                                 const std::vector<UserId>& friends) {
  entries_[user] = Entry{std::move(real), std::move(fake), friends};
}

std::optional<Profile> FakeProfileService::providerView(const UserId& user) const {
  const auto it = entries_.find(user);
  if (it == entries_.end()) return std::nullopt;
  return it->second.fake;
}

std::optional<Profile> FakeProfileService::view(const UserId& viewer,
                                                const UserId& user) const {
  const auto it = entries_.find(user);
  if (it == entries_.end()) return std::nullopt;
  const auto& friends = it->second.friends;
  if (std::find(friends.begin(), friends.end(), viewer) != friends.end()) {
    return it->second.real;
  }
  return it->second.fake;
}

void AtomDictionary::defineClass(const std::string& atomClass,
                                 std::vector<std::string> atoms) {
  classes_[atomClass] = std::move(atoms);
}

std::optional<std::size_t> AtomDictionary::indexOf(
    const std::string& atomClass, const std::string& atom) const {
  const auto it = classes_.find(atomClass);
  if (it == classes_.end()) return std::nullopt;
  const auto pos = std::find(it->second.begin(), it->second.end(), atom);
  if (pos == it->second.end()) return std::nullopt;
  return static_cast<std::size_t>(pos - it->second.begin());
}

std::optional<std::string> AtomDictionary::atomAt(const std::string& atomClass,
                                                  std::size_t index) const {
  const auto it = classes_.find(atomClass);
  if (it == classes_.end() || index >= it->second.size()) return std::nullopt;
  return it->second[index];
}

std::size_t AtomDictionary::classSize(const std::string& atomClass) const {
  const auto it = classes_.find(atomClass);
  return it == classes_.end() ? 0 : it->second.size();
}

std::size_t AtomDictionary::shiftFor(util::BytesView key,
                                     const std::string& atomClass) const {
  const util::Bytes tag = crypto::prf(key, util::toBytes("noyb:" + atomClass));
  std::size_t shift = 0;
  for (int i = 0; i < 8; ++i) {
    shift = (shift << 8) | tag[static_cast<std::size_t>(i)];
  }
  return shift;
}

std::optional<std::string> AtomDictionary::substitute(
    util::BytesView key, const std::string& atomClass,
    const std::string& realAtom) const {
  const auto index = indexOf(atomClass, realAtom);
  if (!index) return std::nullopt;
  const std::size_t n = classSize(atomClass);
  // Keyed rotation: a permutation of the index space, invertible by key
  // holders via recover().
  return atomAt(atomClass, (*index + shiftFor(key, atomClass)) % n);
}

std::optional<std::string> AtomDictionary::recover(
    util::BytesView key, const std::string& atomClass,
    const std::string& storedAtom) const {
  const auto index = indexOf(atomClass, storedAtom);
  if (!index) return std::nullopt;
  const std::size_t n = classSize(atomClass);
  const std::size_t shift = shiftFor(key, atomClass) % n;
  return atomAt(atomClass, (*index + n - shift) % n);
}

}  // namespace dosn::privacy
