// Frientegrity-style authenticated group membership (paper §III-F): "the
// hybrid structure of the access control lists (ACLs) in Frientegrity is
// organized in a persistent authenticated dictionary (PAD)".
//
// The group owner maintains membership in a Pad and signs each version's
// root. An untrusted provider serves (root, proof) pairs; readers verify a
// member's permission against the owner-signed root without trusting the
// provider or downloading the whole ACL.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/privacy/pad.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::privacy {

/// A provider-storable, owner-signed ACL version.
struct SignedAclRoot {
  std::uint64_t version = 0;
  crypto::Digest root{};
  pkcrypto::SchnorrSignature signature;

  util::Bytes signedBytes() const;
};

/// A provider-served membership attestation.
struct MembershipProof {
  SignedAclRoot signedRoot;
  Pad::LookupProof proof;
};

/// Owner side: mutate membership, sign roots.
class PadAcl {
 public:
  PadAcl(const pkcrypto::DlogGroup& group, const social::Keyring& owner);

  /// Grants a permission string ("r", "rw", ...) to a member.
  void grant(const social::UserId& member, const std::string& permission,
             util::Rng& rng);
  void revoke(const social::UserId& member, util::Rng& rng);

  std::uint64_t version() const { return version_; }
  const SignedAclRoot& currentRoot() const { return signedRoot_; }
  std::size_t memberCount() const { return pad_.size(); }

  /// What the provider stores/serves for a member (std::nullopt if absent).
  std::optional<MembershipProof> proveMembership(
      const social::UserId& member) const;

 private:
  void resign(util::Rng& rng);

  const pkcrypto::DlogGroup& group_;
  const social::Keyring& owner_;
  Pad pad_;
  std::uint64_t version_ = 0;
  SignedAclRoot signedRoot_;
};

/// Reader side: verify an attestation against the owner's registered key.
/// Returns the permission string iff everything checks out.
std::optional<std::string> verifyMembership(
    const pkcrypto::DlogGroup& group, const pkcrypto::SchnorrPublicKey& ownerKey,
    const social::UserId& member, const MembershipProof& attestation);

}  // namespace dosn::privacy
