#include "dosn/privacy/publickey_acl.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::privacy {

PublicKeyAcl::PublicKeyAcl(const pkcrypto::DlogGroup& group, util::Rng& rng)
    : dlog_(group), rng_(rng) {}

const pkcrypto::ElGamalPrivateKey& PublicKeyAcl::userKey(const UserId& user) {
  const auto it = userKeys_.find(user);
  if (it != userKeys_.end()) return it->second;
  return userKeys_.emplace(user, pkcrypto::elgamalGenerate(dlog_, rng_))
      .first->second;
}

void PublicKeyAcl::createGroup(const GroupId& group) {
  if (groups_.count(group)) throw util::DosnError("PublicKeyAcl: group exists");
  groups_.emplace(group, GroupState{});
}

void PublicKeyAcl::addMember(const GroupId& group, const UserId& user) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("PublicKeyAcl: unknown group");
  userKey(user);  // ensure the key pair exists
  it->second.members.insert(user);
}

RevocationReport PublicKeyAcl::removeMember(const GroupId& group,
                                            const UserId& user) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("PublicKeyAcl: unknown group");
  it->second.members.erase(user);
  // "His public key will be deleted from the list of group members": future
  // envelopes exclude them; history is untouched (already-decryptable data
  // cannot be revoked — paper §III-B caveat applies to every scheme).
  return RevocationReport{0, 0, 1};
}

std::vector<UserId> PublicKeyAcl::members(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("PublicKeyAcl: unknown group");
  return std::vector<UserId>(it->second.members.begin(),
                             it->second.members.end());
}

bool PublicKeyAcl::isMember(const GroupId& group, const UserId& user) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && it->second.members.count(user) > 0;
}

Envelope PublicKeyAcl::encrypt(const GroupId& group, util::BytesView plaintext,
                               util::Rng& rng) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("PublicKeyAcl: unknown group");
  // Naive per-member encryption: one full public-key ciphertext per member
  // (the §III-C baseline the hybrid scheme of §III-F improves on).
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(it->second.members.size()));
  for (const UserId& member : it->second.members) {
    w.str(member);
    w.bytes(pkcrypto::elgamalEncrypt(dlog_, userKey(member).pub, plaintext, rng));
  }
  Envelope env;
  env.scheme = schemeName();
  env.group = group;
  env.serial = nextSerial_++;
  env.blob = w.take();
  it->second.history.push_back(env);
  return env;
}

std::optional<util::Bytes> PublicKeyAcl::decrypt(const UserId& reader,
                                                 const Envelope& envelope) {
  const auto keyIt = userKeys_.find(reader);
  if (keyIt == userKeys_.end()) return std::nullopt;
  try {
    util::Reader r(envelope.blob);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string member = r.str();
      util::Bytes ciphertext = r.bytes();
      if (member == reader) {
        return pkcrypto::elgamalDecrypt(dlog_, keyIt->second, ciphertext);
      }
    }
    return std::nullopt;  // reader was not a recipient
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

std::vector<Envelope> PublicKeyAcl::history(const GroupId& group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) throw util::DosnError("PublicKeyAcl: unknown group");
  return it->second.history;
}

}  // namespace dosn::privacy
