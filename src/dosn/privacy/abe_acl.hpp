// CP-ABE-based ACL (paper §III-D, Persona/Cachet style): each group is an
// attribute; one encryption serves the whole group ("it is enough to do a
// single encryption operation to construct a new group"); revocation uses
// "frequent re-keying": the attribute is rotated to a new epoch, every
// remaining member gets a fresh key, and the retained history is re-encrypted
// under the new attribute ("previous data ... must be encrypted and stored
// again").
//
// Policy-based encryption across groups is exposed via encryptWithPolicy.
#pragma once

#include <map>
#include <set>

#include "dosn/abe/cpabe.hpp"
#include "dosn/privacy/access_controller.hpp"

namespace dosn::privacy {

class AbeAcl final : public AccessController {
 public:
  AbeAcl(const pkcrypto::DlogGroup& group, util::Rng& rng);

  std::string schemeName() const override { return "cp-abe"; }

  void createGroup(const GroupId& group) override;
  void addMember(const GroupId& group, const UserId& user) override;
  RevocationReport removeMember(const GroupId& group,
                                const UserId& user) override;
  std::vector<UserId> members(const GroupId& group) const override;
  bool isMember(const GroupId& group, const UserId& user) const override;

  Envelope encrypt(const GroupId& group, util::BytesView plaintext,
                   util::Rng& rng) override;
  std::optional<util::Bytes> decrypt(const UserId& reader,
                                     const Envelope& envelope) override;
  std::vector<Envelope> history(const GroupId& group) const override;

  /// Free-form policy over group names, e.g. "(family AND doctors) OR vips".
  /// The envelope is not retained in any group history.
  Envelope encryptWithPolicy(const policy::Policy& accessPolicy,
                             util::BytesView plaintext, util::Rng& rng);

  /// Current attribute epoch of a group.
  std::uint64_t attributeEpoch(const GroupId& group) const;

 private:
  struct GroupState {
    std::uint64_t epoch = 0;
    std::set<UserId> members;
    std::vector<Envelope> history;
  };

  /// The epoch-qualified attribute string for a group.
  std::string epochAttribute(const GroupId& group) const;
  /// Rewrites a free-form policy's leaves to their epoch-qualified form.
  policy::Policy qualifyPolicy(const policy::Policy& p) const;
  /// (Re)issues the reader's user key for all their current memberships.
  abe::CpAbeUserKey readerKey(const UserId& reader) const;

  const pkcrypto::DlogGroup& dlog_;
  util::Rng& rng_;
  abe::CpAbeAuthority authority_;
  std::map<GroupId, GroupState> groups_;
  std::uint64_t nextSerial_ = 1;
};

}  // namespace dosn::privacy
