#include "dosn/privacy/app_capability.hpp"

#include "dosn/util/codec.hpp"

namespace dosn::privacy {

util::Bytes CapabilityToken::signedBytes() const {
  util::Writer w;
  w.u64(id);
  w.str(owner);
  w.str(app);
  w.str(scope);
  w.u8(static_cast<std::uint8_t>(rights));
  w.u64(expiresAt);
  return w.take();
}

util::Bytes CapabilityToken::serialize() const {
  util::Writer w;
  w.raw(signedBytes());
  w.bytes(signature.serialize());
  return w.take();
}

std::optional<CapabilityToken> CapabilityToken::deserialize(
    util::BytesView data) {
  try {
    util::Reader r(data);
    CapabilityToken t;
    t.id = r.u64();
    t.owner = r.str();
    t.app = r.str();
    t.scope = r.str();
    const std::uint8_t rights = r.u8();
    if (rights < 1 || rights > 3) return std::nullopt;
    t.rights = static_cast<AppRight>(rights);
    t.expiresAt = r.u64();
    const auto sig = pkcrypto::SchnorrSignature::deserialize(r.bytes());
    if (!sig) return std::nullopt;
    t.signature = *sig;
    r.expectEnd();
    return t;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

CapabilityToken CapabilityIssuer::issue(const std::string& app,
                                        const std::string& scope,
                                        AppRight rights,
                                        std::uint64_t expiresAt,
                                        util::Rng& rng) {
  CapabilityToken token;
  token.id = nextId_++;
  token.owner = owner_.user;
  token.app = app;
  token.scope = scope;
  token.rights = rights;
  token.expiresAt = expiresAt;
  token.signature = pkcrypto::schnorrSign(group_, owner_.signing,
                                          token.signedBytes(), rng);
  return token;
}

namespace {

bool scopeCovers(const std::string& scope, const std::string& resource) {
  if (resource == scope) return true;
  // Prefix match on path-segment boundary.
  return resource.size() > scope.size() &&
         resource.compare(0, scope.size(), scope) == 0 &&
         resource[scope.size()] == '/';
}

bool rightsCover(AppRight granted, AppRight needed) {
  return (static_cast<std::uint8_t>(granted) &
          static_cast<std::uint8_t>(needed)) ==
         static_cast<std::uint8_t>(needed);
}

}  // namespace

bool checkCapability(const pkcrypto::DlogGroup& group,
                     const social::IdentityRegistry& registry,
                     const CapabilityToken& token,
                     const std::set<std::uint64_t>& revocationList,
                     const std::string& app, const std::string& resource,
                     AppRight needed, std::uint64_t now) {
  if (token.app != app) return false;
  if (revocationList.count(token.id)) return false;
  if (token.expiresAt != 0 && now > token.expiresAt) return false;
  if (!scopeCovers(token.scope, resource)) return false;
  if (!rightsCover(token.rights, needed)) return false;
  const auto identity = registry.lookup(token.owner);
  if (!identity) return false;
  return pkcrypto::schnorrVerify(group, identity->signingKey,
                                 token.signedBytes(), token.signature);
}

}  // namespace dosn::privacy
