#include "dosn/privacy/direct_message.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::privacy {

util::Bytes SealedMessage::header() const {
  util::Writer w;
  w.str(from);
  w.str(to);
  w.u64(counter);
  return w.take();
}

util::Bytes SealedMessage::serialize() const {
  util::Writer w;
  w.str(from);
  w.str(to);
  w.u64(counter);
  w.bytes(box);
  return w.take();
}

std::optional<SealedMessage> SealedMessage::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    SealedMessage m;
    m.from = r.str();
    m.to = r.str();
    m.counter = r.u64();
    m.box = r.bytes();
    r.expectEnd();
    return m;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

MessageChannel::MessageChannel(const pkcrypto::DlogGroup& group,
                               const social::Keyring& keyring,
                               const social::IdentityRegistry& registry)
    : group_(group), keyring_(keyring), registry_(registry) {}

util::Bytes MessageChannel::directionKey(const social::UserId& sender,
                                         const social::UserId& receiver) {
  const social::UserId peer = (sender == keyring_.user) ? receiver : sender;
  auto it = sharedSecrets_.find(peer);
  if (it == sharedSecrets_.end()) {
    const auto identity = registry_.lookup(peer);
    if (!identity) throw util::DosnError("MessageChannel: unknown peer " + peer);
    // The ElGamal identity key doubles as the DH contribution: y = g^x.
    const pkcrypto::DhKeyPair mine{keyring_.encryption.x,
                                   keyring_.encryption.pub.y};
    const bignum::BigUint shared =
        pkcrypto::dhSharedElement(group_, mine, identity->encryptionKey.y);
    it = sharedSecrets_
             .emplace(peer, shared.toBytesPadded(group_.elementBytes()))
             .first;
  }
  return crypto::hkdf(it->second, {},
                      util::toBytes("dm:" + sender + ">" + receiver), 32);
}

SealedMessage MessageChannel::seal(const social::UserId& to,
                                   util::BytesView plaintext, util::Rng& rng) {
  SealedMessage m;
  m.from = keyring_.user;
  m.to = to;
  m.counter = ++sendCounter_[to];
  const util::Bytes key = directionKey(m.from, m.to);
  m.box = crypto::sealWithNonce(key, plaintext, rng, m.header());
  return m;
}

std::optional<util::Bytes> MessageChannel::open(const SealedMessage& message) {
  if (message.to != keyring_.user) return std::nullopt;
  if (!registry_.contains(message.from)) return std::nullopt;
  // Replay protection: strictly increasing per-sender counters.
  const auto last = lastReceived_.find(message.from);
  if (last != lastReceived_.end() && message.counter <= last->second) {
    return std::nullopt;
  }
  const util::Bytes key = directionKey(message.from, message.to);
  const auto plain = crypto::openWithNonce(key, message.box, message.header());
  if (!plain) return std::nullopt;
  lastReceived_[message.from] = message.counter;
  return plain;
}

}  // namespace dosn::privacy
