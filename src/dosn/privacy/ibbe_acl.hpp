// IBBE-based ACL (paper §III-E): member usernames are their public keys; the
// broadcaster encrypts to the current recipient list, and "removing a
// recipient from the list would then have no extra cost" — revocation is a
// list edit, no re-keying, no history rewrite.
#pragma once

#include <map>
#include <set>

#include "dosn/ibbe/ibbe.hpp"
#include "dosn/privacy/access_controller.hpp"

namespace dosn::privacy {

class IbbeAcl final : public AccessController {
 public:
  IbbeAcl(const pkcrypto::DlogGroup& group, util::Rng& rng);

  std::string schemeName() const override { return "ibbe"; }

  void createGroup(const GroupId& group) override;
  void addMember(const GroupId& group, const UserId& user) override;
  RevocationReport removeMember(const GroupId& group,
                                const UserId& user) override;
  std::vector<UserId> members(const GroupId& group) const override;
  bool isMember(const GroupId& group, const UserId& user) const override;

  Envelope encrypt(const GroupId& group, util::BytesView plaintext,
                   util::Rng& rng) override;
  std::optional<util::Bytes> decrypt(const UserId& reader,
                                     const Envelope& envelope) override;
  std::vector<Envelope> history(const GroupId& group) const override;

  const ibbe::Pkg& pkg() const { return pkg_; }

 private:
  struct GroupState {
    std::set<UserId> members;
    std::vector<Envelope> history;
  };

  const pkcrypto::DlogGroup& dlog_;
  ibbe::Pkg pkg_;
  std::map<GroupId, GroupState> groups_;
  std::uint64_t nextSerial_ = 1;
};

}  // namespace dosn::privacy
