// Identity-Based Broadcast Encryption (paper §III-E): any identifier string
// (username, e-mail) serves as a public key; a trusted Private Key Generator
// (PKG) issues the matching private keys; a broadcaster encrypts one message
// to a list of identities, and removing a recipient from future broadcasts
// has no extra cost (no re-keying of the others).
//
// Construction (simulation-grade; see DESIGN.md §3.1): the PKG derives a
// scalar k_id per identity from its master secret and exposes the public
// directory Y_id = g^{k_id}; broadcast encryption wraps a session key to each
// listed identity under a shared ephemeral (one exponentiation per recipient).
// Real IBBE (Delerablée) achieves constant-size ciphertexts via pairings; our
// header is linear in |S|. The paper's claims reproduced here are about
// flexibility (string identities, per-recipient addressing) and O(1)
// removal — both preserved. Ciphertext-size shape is reported honestly in
// EXPERIMENTS.md.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::ibbe {

using bignum::BigUint;
using pkcrypto::DlogGroup;

/// A recipient's private key, issued by the PKG.
struct IbbeUserKey {
  std::string identity;
  BigUint secret;  // k_id
};

struct IbbeCiphertext {
  BigUint c1;  // g^k
  std::vector<std::pair<std::string, util::Bytes>> wraps;  // id -> wrap
  util::Bytes payloadBox;

  util::Bytes serialize() const;
  static std::optional<IbbeCiphertext> deserialize(util::BytesView data);
};

/// The Private Key Generator (trusted third party of §III-E).
class Pkg {
 public:
  Pkg(const DlogGroup& group, util::Rng& rng);

  /// Public directory entry Y_id (cacheable; any string is an identity).
  BigUint identityPublicKey(const std::string& identity) const;

  /// Extracts the private key for an identity (PKG-only operation).
  IbbeUserKey extract(const std::string& identity) const;

  const DlogGroup& group() const { return group_; }

 private:
  BigUint identitySecret(const std::string& identity) const;

  const DlogGroup& group_;
  util::Bytes masterSecret_;
};

/// Encrypts to a recipient list. `directory` maps each identity in
/// `recipients` to its public key (from Pkg::identityPublicKey).
IbbeCiphertext ibbeEncrypt(const DlogGroup& group,
                           const std::map<std::string, BigUint>& directory,
                           const std::vector<std::string>& recipients,
                           util::BytesView plaintext, util::Rng& rng);

/// Decrypts if the key's identity is in the recipient list.
std::optional<util::Bytes> ibbeDecrypt(const DlogGroup& group,
                                       const IbbeUserKey& key,
                                       const IbbeCiphertext& ct);

}  // namespace dosn::ibbe
