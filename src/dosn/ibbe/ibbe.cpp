#include "dosn/ibbe/ibbe.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/crypto/hmac.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::ibbe {

namespace {

util::Bytes wrapKey(const DlogGroup& group, const BigUint& shared,
                    const std::string& identity) {
  util::Bytes material = shared.toBytesPadded(group.elementBytes());
  const util::Bytes id = util::toBytes(identity);
  material.insert(material.end(), id.begin(), id.end());
  return crypto::deriveKey(material, "ibbe-wrap");
}

}  // namespace

util::Bytes IbbeCiphertext::serialize() const {
  util::Writer w;
  w.bytes(c1.toBytes());
  w.u32(static_cast<std::uint32_t>(wraps.size()));
  for (const auto& [id, box] : wraps) {
    w.str(id);
    w.bytes(box);
  }
  w.bytes(payloadBox);
  return w.take();
}

std::optional<IbbeCiphertext> IbbeCiphertext::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    IbbeCiphertext ct;
    ct.c1 = BigUint::fromBytes(r.bytes());
    const std::uint32_t count = r.u32();
    ct.wraps.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string id = r.str();
      ct.wraps.emplace_back(std::move(id), r.bytes());
    }
    ct.payloadBox = r.bytes();
    r.expectEnd();
    return ct;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

Pkg::Pkg(const DlogGroup& group, util::Rng& rng)
    : group_(group), masterSecret_(rng.bytes(32)) {}

BigUint Pkg::identitySecret(const std::string& identity) const {
  const util::Bytes material =
      crypto::prf(masterSecret_, util::toBytes("id:" + identity));
  return group_.hashToScalar(material);
}

BigUint Pkg::identityPublicKey(const std::string& identity) const {
  return group_.exp(identitySecret(identity));
}

IbbeUserKey Pkg::extract(const std::string& identity) const {
  return IbbeUserKey{identity, identitySecret(identity)};
}

IbbeCiphertext ibbeEncrypt(const DlogGroup& group,
                           const std::map<std::string, BigUint>& directory,
                           const std::vector<std::string>& recipients,
                           util::BytesView plaintext, util::Rng& rng) {
  if (recipients.empty()) {
    throw util::CryptoError("ibbeEncrypt: empty recipient list");
  }
  IbbeCiphertext ct;
  const BigUint k = group.randomScalar(rng);
  ct.c1 = group.exp(k);
  const util::Bytes sessionKey = rng.bytes(32);
  ct.wraps.reserve(recipients.size());
  for (const auto& id : recipients) {
    const auto it = directory.find(id);
    if (it == directory.end()) {
      throw util::CryptoError("ibbeEncrypt: identity not in directory: " + id);
    }
    const BigUint shared = group.exp(it->second, k);
    ct.wraps.emplace_back(
        id, crypto::sealWithNonce(wrapKey(group, shared, id), sessionKey, rng));
  }
  ct.payloadBox = crypto::sealWithNonce(
      crypto::deriveKey(sessionKey, "ibbe-payload"), plaintext, rng);
  return ct;
}

std::optional<util::Bytes> ibbeDecrypt(const DlogGroup& group,
                                       const IbbeUserKey& key,
                                       const IbbeCiphertext& ct) {
  for (const auto& [id, box] : ct.wraps) {
    if (id != key.identity) continue;
    const BigUint shared = group.exp(ct.c1, key.secret);
    const auto session = crypto::openWithNonce(wrapKey(group, shared, id), box);
    if (!session) return std::nullopt;
    return crypto::openWithNonce(crypto::deriveKey(*session, "ibbe-payload"),
                                 ct.payloadBox);
  }
  return std::nullopt;
}

}  // namespace dosn::ibbe
