// Minimal JSON document model for the benchmark harness: enough to emit the
// schema-versioned BENCH_<name>.json trajectory files and to parse them back
// (the round-trip is pinned by test_benchkit and consumed by
// tools/bench_compare.py). Objects preserve insertion order so the emitted
// files diff cleanly; non-finite numbers serialize as null (JSON has no NaN).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dosn::benchkit {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  // Leaf accessors; throw std::runtime_error on a type mismatch so a
  // malformed document fails loudly rather than reading as zeros.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;

  // Object interface. set() replaces an existing key in place (keeping its
  // position) or appends a new one.
  Json& set(const std::string& key, Json value);
  const Json* find(std::string_view key) const;

  // Array interface.
  void push(Json value);

  /// Element count of an array or object (0 for leaves).
  std::size_t size() const;
  const Json& at(std::size_t index) const;
  const std::vector<std::pair<std::string, Json>>& items() const {
    return members_;
  }
  const std::vector<Json>& elements() const { return elements_; }

  /// Structural equality; numbers compare exactly.
  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// indent == 0 renders compact; indent > 0 pretty-prints with that many
  /// spaces per nesting level.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete document; std::nullopt on any syntax error
  /// or trailing garbage.
  static std::optional<Json> parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;                          // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject

  void dumpTo(std::string& out, int indent, int depth) const;
};

}  // namespace dosn::benchkit
