#include "dosn/benchkit/benchkit.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <regex>

// The build injects `git describe --always --dirty` (see src/CMakeLists.txt)
// so every trajectory file records the tree it was measured on.
#ifndef DOSN_GIT_DESCRIBE
#define DOSN_GIT_DESCRIBE "unknown"
#endif

namespace dosn::benchkit {

namespace {

std::string isoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string baseName(const char* argv0) {
  std::string name = argv0 ? argv0 : "bench";
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

void printUsage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--list] [--filter <regex>] [--smoke] [--seed <n>]\n"
               "       [--reps <n>] [--warmup <n>] [--json <path>] [--help]\n"
               "\n"
               "  --list            print scenario names and exit\n"
               "  --filter <regex>  run only matching scenarios\n"
               "  --smoke           fast CI workloads, reps forced to 1\n"
               "  --seed <n>        base RNG seed (default 42)\n"
               "  --reps <n>        timed repetitions per scenario\n"
               "  --warmup <n>      untimed warmup runs per scenario\n"
               "  --json <path>     write the BENCH_*.json trajectory\n",
               argv0 ? argv0 : "bench");
}

bool parseUint(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

Json summarizeHistogram(const sim::Histogram& h) {
  Json out = Json::object();
  out.set("count", h.count());
  out.set("mean", h.mean());
  out.set("p50", h.percentile(50));
  out.set("p95", h.percentile(95));
  return out;
}

}  // namespace

double WallStats::percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

WallStats WallStats::fromSamples(std::vector<double> samplesMs) {
  WallStats stats;
  stats.reps = samplesMs.size();
  if (samplesMs.empty()) return stats;
  std::sort(samplesMs.begin(), samplesMs.end());
  stats.minMs = samplesMs.front();
  stats.maxMs = samplesMs.back();
  double sum = 0;
  for (const double v : samplesMs) sum += v;
  stats.meanMs = sum / static_cast<double>(samplesMs.size());
  stats.medianMs = percentile(samplesMs, 50);
  stats.p95Ms = percentile(samplesMs, 95);
  return stats;
}

void ScenarioContext::mergeMetrics(const sim::Metrics& other) {
  for (const auto& [name, value] : other.counters()) {
    metrics_.increment(name, value);
  }
  for (const auto& [name, value] : other.gauges()) {
    metrics_.gauge(name, value);
  }
  for (const auto& [name, histogram] : other.histograms()) {
    // sim::Histogram exposes no raw samples; carry the summary as gauges.
    if (histogram.count() == 0) continue;
    metrics_.gauge(name + ".count", static_cast<double>(histogram.count()));
    metrics_.gauge(name + ".mean", histogram.mean());
    metrics_.gauge(name + ".p50", histogram.percentile(50));
    metrics_.gauge(name + ".p95", histogram.percentile(95));
  }
}

void ScenarioContext::param(const std::string& name, double value) {
  params_.set(name, Json(value));
}

void ScenarioContext::param(const std::string& name, const std::string& value) {
  params_.set(name, Json(value));
}

void ScenarioContext::fail(const std::string& message) {
  failures_.push_back(message);
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

bool Registry::add(std::string name, ScenarioFn fn, Options opts) {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) {
      std::fprintf(stderr, "benchkit: duplicate scenario '%s'\n", name.c_str());
      std::abort();
    }
  }
  scenarios_.push_back(Scenario{std::move(name), fn, opts});
  return true;
}

std::vector<std::size_t> Registry::match(const std::string& pattern) const {
  std::vector<std::size_t> out;
  if (pattern.empty()) {
    for (std::size_t i = 0; i < scenarios_.size(); ++i) out.push_back(i);
    return out;
  }
  const std::regex re(pattern);
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    if (std::regex_search(scenarios_[i].name, re)) out.push_back(i);
  }
  return out;
}

CliResult parseCli(int argc, const char* const* argv, std::FILE* out,
                   std::FILE* err) {
  CliResult result;
  const char* argv0 = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool hasInlineValue = false;
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInlineValue = true;
    }
    const auto takeValue = [&](const char* flag) -> bool {
      if (hasInlineValue) return true;
      if (i + 1 >= argc) {
        std::fprintf(err, "%s: %s requires a value\n", argv0, flag);
        return false;
      }
      value = argv[++i];
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      printUsage(out, argv0);
      result.exitCode = 0;
      return result;
    } else if (arg == "--list") {
      result.config.list = true;
    } else if (arg == "--smoke") {
      result.config.smoke = true;
    } else if (arg == "--filter") {
      if (!takeValue("--filter")) {
        result.exitCode = 2;
        return result;
      }
      result.config.filter = value;
    } else if (arg == "--json") {
      if (!takeValue("--json")) {
        result.exitCode = 2;
        return result;
      }
      result.config.jsonPath = value;
    } else if (arg == "--seed" || arg == "--reps" || arg == "--warmup") {
      const std::string flag = arg;
      if (!takeValue(flag.c_str())) {
        result.exitCode = 2;
        return result;
      }
      std::uint64_t parsed = 0;
      if (!parseUint(value, &parsed)) {
        std::fprintf(err, "%s: %s expects a non-negative integer, got '%s'\n",
                     argv0, flag.c_str(), value.c_str());
        result.exitCode = 2;
        return result;
      }
      if (flag == "--seed") {
        result.config.seed = parsed;
      } else if (flag == "--reps") {
        result.config.repsOverride = static_cast<std::size_t>(parsed);
      } else {
        result.config.warmupOverride = static_cast<std::size_t>(parsed);
      }
    } else {
      std::fprintf(err, "%s: unrecognized argument '%s'\n", argv0, argv[i]);
      printUsage(err, argv0);
      result.exitCode = 2;
      return result;
    }
  }
  return result;
}

Json runScenarios(const Registry& registry, const RunConfig& config,
                  const std::string& benchName, bool* anyFailed) {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("bench", benchName);
  doc.set("git_describe", DOSN_GIT_DESCRIBE);
  doc.set("timestamp", isoTimestampUtc());
  doc.set("smoke", config.smoke);
  doc.set("seed", config.seed);
  Json scenarios = Json::array();

  bool failed = false;
  for (const std::size_t index : registry.match(config.filter)) {
    const Scenario& scenario = registry.scenarios()[index];
    if (config.smoke && scenario.opts.skipInSmoke && !config.repsOverride) {
      continue;
    }
    std::size_t reps = config.repsOverride
                           ? *config.repsOverride
                           : (config.smoke ? 1 : scenario.opts.reps);
    if (reps == 0) reps = 1;
    const std::size_t warmup = config.warmupOverride
                                   ? *config.warmupOverride
                                   : (config.smoke ? 0 : scenario.opts.warmup);

    for (std::size_t w = 0; w < warmup; ++w) {
      ScenarioContext warmCtx(config.seed, config.smoke, /*printing=*/false);
      scenario.fn(warmCtx);
      failed |= warmCtx.failed();
    }

    ScenarioContext ctx(config.seed, config.smoke, /*printing=*/true);
    std::vector<double> samples;
    samples.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      ctx.setPrinting(r == 0);
      Timer timer;
      scenario.fn(ctx);
      samples.push_back(timer.ms());
    }
    failed |= ctx.failed();
    const WallStats stats = WallStats::fromSamples(samples);

    std::printf(
        "  [%s] wall median %.3f ms (min %.3f, mean %.3f, p95 %.3f; reps=%zu"
        "%s%s)\n",
        scenario.name.c_str(), stats.medianMs, stats.minMs, stats.meanMs,
        stats.p95Ms, stats.reps, scenario.opts.hot ? ", hot" : "",
        ctx.failed() ? ", FAILED" : "");

    Json entry = Json::object();
    entry.set("name", scenario.name);
    entry.set("hot", scenario.opts.hot);
    entry.set("params", ctx.params());
    entry.set("reps", stats.reps);
    entry.set("warmup", warmup);
    Json wall = Json::object();
    wall.set("min", stats.minMs);
    wall.set("median", stats.medianMs);
    wall.set("mean", stats.meanMs);
    wall.set("p95", stats.p95Ms);
    wall.set("max", stats.maxMs);
    Json sampleArray = Json::array();
    for (const double s : samples) sampleArray.push(s);
    wall.set("samples", std::move(sampleArray));
    entry.set("wall_ms", std::move(wall));
    Json counters = Json::object();
    for (const auto& [name, value] : ctx.metrics().counters()) {
      counters.set(name, value);
    }
    entry.set("counters", std::move(counters));
    Json gauges = Json::object();
    for (const auto& [name, value] : ctx.metrics().gauges()) {
      gauges.set(name, value);
    }
    entry.set("gauges", std::move(gauges));
    Json histograms = Json::object();
    for (const auto& [name, histogram] : ctx.metrics().histograms()) {
      if (histogram.count() == 0) continue;
      histograms.set(name, summarizeHistogram(histogram));
    }
    entry.set("histograms", std::move(histograms));
    if (ctx.timeline()) entry.set("timeline", *ctx.timeline());
    if (ctx.failed()) {
      Json failures = Json::array();
      for (const auto& message : ctx.failures()) failures.push(message);
      entry.set("failures", std::move(failures));
    }
    scenarios.push(std::move(entry));
  }
  doc.set("scenarios", std::move(scenarios));
  if (anyFailed) *anyFailed = failed;
  return doc;
}

int benchMain(int argc, char** argv) {
  const CliResult cli = parseCli(argc, argv, stdout, stderr);
  if (cli.exitCode >= 0) return cli.exitCode;
  const Registry& registry = Registry::instance();

  std::vector<std::size_t> selected;
  try {
    selected = registry.match(cli.config.filter);
  } catch (const std::regex_error&) {
    std::fprintf(stderr, "%s: invalid --filter regex '%s'\n",
                 baseName(argv[0]).c_str(), cli.config.filter.c_str());
    return 2;
  }

  if (cli.config.list) {
    for (const std::size_t index : selected) {
      const Scenario& s = registry.scenarios()[index];
      std::printf("%s%s%s\n", s.name.c_str(), s.opts.hot ? "  [hot]" : "",
                  s.opts.skipInSmoke ? "  [skip-in-smoke]" : "");
    }
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "%s: no scenarios match '%s'\n",
                 baseName(argv[0]).c_str(), cli.config.filter.c_str());
    return 2;
  }

  bool failed = false;
  const Json doc =
      runScenarios(registry, cli.config, baseName(argv[0]), &failed);

  if (!cli.config.jsonPath.empty()) {
    std::FILE* f = std::fopen(cli.config.jsonPath.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "%s: cannot write %s\n", baseName(argv[0]).c_str(),
                   cli.config.jsonPath.c_str());
      return 2;
    }
    const std::string text = doc.dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return failed ? 1 : 0;
}

}  // namespace dosn::benchkit
