// The unified benchmark harness (DESIGN.md §3c). Every bench_* executable
// registers named scenarios with BENCH_SCENARIO and delegates its main() to
// benchMain(), which provides the shared CLI
//
//   --list            print registered scenario names and exit
//   --filter <regex>  run only scenarios whose name matches (ECMAScript)
//   --smoke           CI mode: scenarios shrink their workloads, reps forced
//                     to 1 (unless --reps is explicit), heavyweight scenarios
//                     marked skipInSmoke are skipped
//   --seed <n>        base RNG seed for every scenario (default 42 — the
//                     historical value, so default output is unchanged)
//   --reps <n>        override timed repetitions per scenario
//   --warmup <n>      override untimed warmup runs per scenario
//   --json <path>     write the schema-versioned trajectory document
//   --help            usage, exit 0 (unknown flags exit 2)
//
// The runner times each scenario invocation with a steady clock (warmup runs
// first, untimed, against a throwaway context), reports min/median/mean/p95
// over the rep samples, and embeds the scenario's final sim::Metrics
// counter/gauge snapshot — either recorded directly via the context or
// mirrored from a simulation's metrics sink — into one BENCH_<name>.json
// per executable. tools/bench_compare.py diffs two such documents.
#pragma once

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "dosn/benchkit/json.hpp"
#include "dosn/sim/metrics.hpp"

namespace dosn::benchkit {

/// Document format version written to every trajectory file; bump on any
/// backwards-incompatible change and teach tools/bench_compare.py both.
inline constexpr const char* kSchema = "dosn-bench/1";

struct Options {
  std::size_t reps = 1;     ///< timed repetitions (sim experiments default 1)
  std::size_t warmup = 0;   ///< untimed runs before the samples
  bool hot = false;         ///< hot path: median gated by bench_compare.py
  bool skipInSmoke = false; ///< too heavy for CI's --smoke sweep
};

/// Wall-clock sample statistics, milliseconds. Percentiles use the same
/// linear interpolation between order statistics as sim::Histogram.
struct WallStats {
  std::size_t reps = 0;
  double minMs = 0, medianMs = 0, meanMs = 0, p95Ms = 0, maxMs = 0;

  static WallStats fromSamples(std::vector<double> samplesMs);
  /// p in [0,100] over an already-sorted sample vector.
  static double percentile(const std::vector<double>& sorted, double p);
};

class ScenarioContext {
 public:
  ScenarioContext(std::uint64_t seed, bool smoke, bool printing)
      : seed_(seed), smoke_(smoke), printing_(printing) {}

  /// Base RNG seed (--seed). Scenarios must derive every generator from this
  /// instead of hardcoding constants, so seed plumbing is testable; the
  /// default (42) reproduces the historical tables.
  std::uint64_t seed() const { return seed_; }
  bool smoke() const { return smoke_; }
  /// True only on the first timed rep — guard human-readable table output
  /// with this so --reps N and warmup runs don't duplicate it.
  bool printing() const { return printing_; }
  void setPrinting(bool printing) { printing_ = printing; }

  /// The scenario's metrics snapshot, embedded in the JSON document. Hand
  /// this to sim::Network::setMetrics, or record into it directly.
  sim::Metrics& metrics() { return metrics_; }
  const sim::Metrics& metrics() const { return metrics_; }
  /// Adds `other`'s counters and copies its gauges into the snapshot (for
  /// simulations that own a separate sink per sub-run).
  void mergeMetrics(const sim::Metrics& other);

  void counter(const std::string& name, std::uint64_t value) {
    metrics_.increment(name, value);
  }
  void gauge(const std::string& name, double value) {
    metrics_.gauge(name, value);
  }

  /// Per-phase timeline for macro-workload scenarios: a Json array of phase
  /// objects — each `{"name": ..., "counters": {...}, "params": {...}}` — that
  /// the harness emits as the scenario's "timeline" field, so
  /// tools/bench_compare.py can localize a regression to a workload phase.
  /// Each call replaces the previous timeline; with --reps > 1 the last
  /// timed rep's timeline is the one recorded (phases carry per-rep deltas,
  /// unlike the context's cumulative counters).
  void setTimeline(Json timeline) { timeline_ = std::move(timeline); }
  const std::optional<Json>& timeline() const { return timeline_; }

  /// Free-form scenario parameters recorded in the JSON document (sizes,
  /// derived ms/op figures, sweep labels).
  void param(const std::string& name, double value);
  void param(const std::string& name, const std::string& value);
  void param(const std::string& name, const char* value) {
    param(name, std::string(value));
  }

  /// Marks the scenario (and the whole run) failed; benchMain exits 1.
  /// Differential benches use this instead of printf-and-exit so a mismatch
  /// is visible in the JSON artifact too.
  void fail(const std::string& message);
  void require(bool ok, const std::string& message) {
    if (!ok) fail(message);
  }
  bool failed() const { return !failures_.empty(); }
  const std::vector<std::string>& failures() const { return failures_; }
  const Json& params() const { return params_; }

 private:
  std::uint64_t seed_;
  bool smoke_;
  bool printing_;
  sim::Metrics metrics_;
  Json params_ = Json::object();
  std::optional<Json> timeline_;
  std::vector<std::string> failures_;
};

using ScenarioFn = void (*)(ScenarioContext&);

struct Scenario {
  std::string name;
  ScenarioFn fn;
  Options opts;
};

class Registry {
 public:
  /// The process-wide registry BENCH_SCENARIO registers into.
  static Registry& instance();

  /// Returns true (the macro binds it to a static bool). Duplicate names are
  /// rejected with a loud stderr message so a copy-paste slip can't silently
  /// shadow a scenario.
  bool add(std::string name, ScenarioFn fn, Options opts = {});

  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  /// Indices of scenarios whose name matches `pattern` (ECMAScript regex,
  /// partial match; empty pattern matches all), in registration order.
  std::vector<std::size_t> match(const std::string& pattern) const;

 private:
  std::vector<Scenario> scenarios_;
};

struct RunConfig {
  std::uint64_t seed = 42;
  bool smoke = false;
  bool list = false;
  std::string filter;
  std::string jsonPath;
  std::optional<std::size_t> repsOverride;
  std::optional<std::size_t> warmupOverride;
};

struct CliResult {
  RunConfig config;
  /// Exit immediately with this code when >= 0 (--help, parse errors).
  int exitCode = -1;
};

/// Parses the shared CLI. Usage goes to `out` for --help and to `err` for
/// unrecognized input. Accepts both `--flag value` and `--flag=value`.
CliResult parseCli(int argc, const char* const* argv, std::FILE* out,
                   std::FILE* err);

/// Runs every scenario selected by `config` and returns the trajectory
/// document. `anyFailed` (optional) reports scenario require()/fail() calls.
Json runScenarios(const Registry& registry, const RunConfig& config,
                  const std::string& benchName, bool* anyFailed = nullptr);

/// The shared main: parse CLI, run, print per-scenario timing footers, write
/// --json. Returns 0 on success, 1 on scenario failure, 2 on CLI/IO errors.
int benchMain(int argc, char** argv);

/// Simple steady-clock stopwatch shared by the bench kernels.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dosn::benchkit

/// Registers a scenario: BENCH_SCENARIO(name) { ...body using ctx... }
/// An optional second argument supplies benchkit::Options, e.g.
/// BENCH_SCENARIO(powmod_2048, {.reps = 5, .warmup = 1, .hot = true}) {...}
#define BENCH_SCENARIO(name, ...)                                           \
  static void dosn_benchkit_fn_##name(::dosn::benchkit::ScenarioContext&);  \
  [[maybe_unused]] static const bool dosn_benchkit_reg_##name =             \
      ::dosn::benchkit::Registry::instance().add(                           \
          #name, &dosn_benchkit_fn_##name __VA_OPT__(, ) __VA_ARGS__);      \
  static void dosn_benchkit_fn_##name(::dosn::benchkit::ScenarioContext& ctx)

#define BENCHKIT_MAIN()                                      \
  int main(int argc, char** argv) {                          \
    return ::dosn::benchkit::benchMain(argc, argv);          \
  }
