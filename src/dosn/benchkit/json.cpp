#include "dosn/benchkit/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dosn::benchkit {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null is unmistakable in a report
    return;
  }
  // Integers (the common case: counters, reps, byte sizes) print without an
  // exponent or trailing ".0"; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parseDocument() {
    skipWs();
    Json value;
    if (!parseValue(value)) return std::nullopt;
    skipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(Json& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't':
        if (!consumeLiteral("true")) return false;
        out = Json(true);
        return true;
      case 'f':
        if (!consumeLiteral("false")) return false;
        out = Json(false);
        return true;
      case 'n':
        if (!consumeLiteral("null")) return false;
        out = Json();
        return true;
      default: return parseNumber(out);
    }
  }

  bool parseObject(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (!consume(':')) return false;
      skipWs();
      Json value;
      if (!parseValue(value)) return false;
      out.set(key, std::move(value));
      skipWs();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parseArray(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    skipWs();
    if (consume(']')) return true;
    while (true) {
      skipWs();
      Json value;
      if (!parseValue(value)) return false;
      out.push(std::move(value));
      skipWs();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  static int hexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (eof()) return false;
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) return false;
        out += c;
        continue;
      }
      if (eof()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const int d = hexDigit(text_[pos_++]);
            if (d < 0) return false;
            code = code * 16 + static_cast<unsigned>(d);
          }
          // BMP only (we never emit surrogate pairs); reject lone surrogates.
          if (code >= 0xD800 && code <= 0xDFFF) return false;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
  }

  bool parseNumber(Json& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out = Json(v);
    return true;
  }
};

}  // namespace

bool Json::asBool() const {
  if (type_ != Type::kBool) throw std::runtime_error("Json: not a bool");
  return bool_;
}

double Json::asNumber() const {
  if (type_ != Type::kNumber) throw std::runtime_error("Json: not a number");
  return number_;
}

const std::string& Json::asString() const {
  if (type_ != Type::kString) throw std::runtime_error("Json: not a string");
  return string_;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push(Json value) {
  if (type_ != Type::kArray) throw std::runtime_error("Json: not an array");
  elements_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return elements_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) throw std::runtime_error("Json: not an array");
  return elements_.at(index);
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return elements_ == other.elements_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: appendNumber(out, number_); break;
    case Type::kString: appendEscaped(out, string_); break;
    case Type::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        elements_[i].dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        appendEscaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace dosn::benchkit
