// Chaum blind RSA signatures (paper §V-A "Blind Signatures ... signing the
// document without knowing what the document contains"). Hummingbird uses the
// resulting signature on a hashtag as the tweet decryption key.
//
//   Requester: m_b = H(m) * r^e mod n          --m_b-->
//   Signer:                                     s_b = m_b^d
//   Requester: s = s_b * r^{-1}  (= H(m)^d)    <--s_b--
#pragma once

#include "dosn/pkcrypto/rsa.hpp"

namespace dosn::pkcrypto {

/// Requester state for one blind-signature run.
class BlindSignatureRequest {
 public:
  BlindSignatureRequest(const RsaPublicKey& signerKey, util::BytesView message,
                        util::Rng& rng);

  /// The blinded value sent to the signer.
  const BigUint& blinded() const { return blinded_; }

  /// Unblinds the signer's response into a standard FDH-RSA signature.
  BigUint unblind(const BigUint& blindSignature) const;

 private:
  RsaPublicKey signerKey_;
  BigUint rInverse_;
  BigUint blinded_;
};

/// Signer side: signs a blinded value (cannot see the message).
BigUint blindSign(const RsaPrivateKey& key, const BigUint& blinded);

/// Verifies an (unblinded) FDH-RSA signature: sig^e == H(m) mod n.
bool blindSignatureVerify(const RsaPublicKey& key, util::BytesView message,
                          const BigUint& signature);

}  // namespace dosn::pkcrypto
