#include "dosn/pkcrypto/multiexp.hpp"

#include <algorithm>

namespace dosn::pkcrypto {

using Limbs = bignum::MontgomeryContext::Limbs;

BigUint dualPowMod(const bignum::MontgomeryContext& ctx, const BigUint& b1,
                   const BigUint& e1, const BigUint& b2, const BigUint& e2) {
  // Shamir's trick: one squaring chain over max(|e1|, |e2|) bits, with the
  // joint table {b1, b2, b1*b2} so a position where both exponents have a set
  // bit still costs a single multiply.
  const Limbs m1 = ctx.toMont(b1);
  const Limbs m2 = ctx.toMont(b2);
  const Limbs table[3] = {m1, m2, ctx.montMul(m1, m2)};

  const std::size_t bits = std::max(e1.bitLength(), e2.bitLength());
  Limbs acc = ctx.one();
  bool started = false;
  for (std::size_t i = bits; i-- > 0;) {
    if (started) acc = ctx.montMul(acc, acc);
    const unsigned idx = static_cast<unsigned>(e1.bit(i)) |
                         (static_cast<unsigned>(e2.bit(i)) << 1);
    if (idx != 0) {
      acc = started ? ctx.montMul(acc, table[idx - 1]) : table[idx - 1];
      started = true;
    }
  }
  return ctx.fromMont(acc);
}

BigUint multiPowMod(const bignum::MontgomeryContext& ctx,
                    const std::vector<PowTerm>& terms) {
  // Strauss interleaving: every term rides the same squaring chain, so k
  // n-bit terms cost n squarings total (not k*n) plus one multiply per set
  // exponent bit.
  std::vector<Limbs> bases;
  bases.reserve(terms.size());
  std::size_t bits = 0;
  for (const PowTerm& t : terms) {
    bases.push_back(ctx.toMont(t.base));
    bits = std::max(bits, t.exponent.bitLength());
  }

  Limbs acc = ctx.one();
  bool started = false;
  for (std::size_t i = bits; i-- > 0;) {
    if (started) acc = ctx.montMul(acc, acc);
    for (std::size_t t = 0; t < terms.size(); ++t) {
      if (!terms[t].exponent.bit(i)) continue;
      acc = started ? ctx.montMul(acc, bases[t]) : bases[t];
      started = true;
    }
  }
  return ctx.fromMont(acc);
}

}  // namespace dosn::pkcrypto
