#include "dosn/pkcrypto/oprf.hpp"

#include "dosn/crypto/hkdf.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

namespace {

util::Bytes outputHash(const DlogGroup& group, util::BytesView input,
                       const BigUint& element) {
  util::Bytes material(input.begin(), input.end());
  const util::Bytes el = element.toBytesPadded(group.elementBytes());
  material.insert(material.end(), el.begin(), el.end());
  return crypto::deriveKey(material, "oprf-h2");
}

}  // namespace

OprfSender::OprfSender(const DlogGroup& group, util::Rng& rng)
    : group_(group), s_(group.randomScalar(rng)) {}

OprfSender::OprfSender(const DlogGroup& group, BigUint secret)
    : group_(group), s_(std::move(secret)) {
  if (s_.isZero() || s_ >= group.q()) {
    throw util::CryptoError("OprfSender: secret out of range");
  }
}

BigUint OprfSender::evaluateBlinded(const BigUint& a) const {
  if (!group_.isElement(a)) {
    throw util::CryptoError("OprfSender: input not a group element");
  }
  return group_.exp(a, s_);
}

util::Bytes OprfSender::evaluate(util::BytesView input) const {
  const BigUint h1 = group_.hashToGroup(input);
  return outputHash(group_, input, group_.exp(h1, s_));
}

OprfReceiver::OprfReceiver(const DlogGroup& group, util::BytesView input,
                           util::Rng& rng)
    : group_(group),
      input_(input.begin(), input.end()),
      r_(group.randomScalar(rng)),
      blinded_(group.exp(group.hashToGroup(input), r_)) {}

util::Bytes OprfReceiver::finalize(const BigUint& reply) const {
  if (!group_.isElement(reply)) {
    throw util::CryptoError("OprfReceiver: reply not a group element");
  }
  const BigUint unblinded = group_.exp(reply, group_.scalarInv(r_));
  return outputHash(group_, input_, unblinded);
}

std::vector<util::Bytes> oprfFinalizeBatch(
    const std::vector<const OprfReceiver*>& receivers,
    const std::vector<BigUint>& replies) {
  if (receivers.size() != replies.size()) {
    throw util::CryptoError("oprfFinalizeBatch: size mismatch");
  }
  std::vector<util::Bytes> out(receivers.size());
  if (receivers.empty()) return out;

  const DlogGroup& group = receivers.front()->group_;
  std::vector<BigUint> blinds;
  blinds.reserve(receivers.size());
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    if (!group.isElement(replies[i])) {
      throw util::CryptoError("OprfReceiver: reply not a group element");
    }
    blinds.push_back(receivers[i]->r_);
  }
  // One extended-Euclid for the whole page; inverses are unique mod q, so
  // each output matches the per-receiver finalize byte-for-byte.
  const std::vector<BigUint> inverses = group.scalarInvBatch(blinds);
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    const BigUint unblinded = group.exp(replies[i], inverses[i]);
    out[i] = outputHash(group, receivers[i]->input_, unblinded);
  }
  return out;
}

}  // namespace dosn::pkcrypto
