#include "dosn/pkcrypto/group.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <string>

#include "dosn/bignum/batch.hpp"
#include "dosn/bignum/prime.hpp"
#include "dosn/crypto/sha256.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

using bignum::invMod;
using bignum::mulMod;
using bignum::powMod;

namespace {

// Safe primes generated once with randomSafePrime (seed 42); see header.
constexpr const char* kP256 =
    "e72ec0b46c374835429b1af9e6cc647ac6ab9224d9060f57c2fec4d6bc5aa463";
constexpr const char* kP512 =
    "adf9d1f7f05d445a49fcdda6106afaa5024353448fad0b45ffe4910771a44e29"
    "1c93c2da16cc7ede44389f3cfd7b55121dd135be5262fc6639e7db9575bbec9f";

// RFC 2409 Oakley Group 2 (1024-bit MODP); generator 2.
constexpr const char* kP1024 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

// RFC 3526 Group 14 (2048-bit MODP); generator 2.
constexpr const char* kP2048 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

DlogGroup fromSafePrime(const char* hex) {
  const auto p = BigUint::fromHex(hex);
  if (!p) throw util::CryptoError("DlogGroup: bad cached prime");
  const BigUint q = (*p - BigUint(1)) >> 1;
  // g = 2^2 = 4 is a quadratic residue, hence generates the order-q subgroup
  // (4 != 1 mod p for any p > 5).
  const BigUint g = mulMod(BigUint(2), BigUint(2), *p);
  return DlogGroup(*p, q, g);
}

}  // namespace

const bignum::FixedBasePowerTable& fixedBasePowerTable(
    const BigUint& base, const BigUint& modulus,
    std::size_t maxExponentBits) {
  static std::mutex mutex;
  // Entries are never erased and std::map never relocates nodes, so returned
  // references stay valid for the process lifetime (as the header promises).
  static std::map<std::string, bignum::FixedBasePowerTable> tables;
  // The requested width is part of the key: a caller wanting a wider table
  // gets its own entry instead of invalidating narrower ones already handed
  // out. In practice each (g, p) is always requested at one width.
  const std::size_t windows = (std::max<std::size_t>(maxExponentBits, 1) + 3) / 4;
  std::string key = base.toHex();
  key.push_back('/');
  key += modulus.toHex();
  key.push_back('/');
  key += std::to_string(windows);
  std::lock_guard<std::mutex> lock(mutex);
  auto it = tables.find(key);
  if (it != tables.end()) return it->second;
  return tables
      .emplace(std::move(key),
               bignum::FixedBasePowerTable(base, modulus, maxExponentBits))
      .first->second;
}

DlogGroup::DlogGroup(BigUint p, BigUint q, BigUint g)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)) {
  if (p_ < BigUint(7)) throw util::CryptoError("DlogGroup: modulus too small");
  if (p_.isOdd()) {
    pCtx_ = std::make_shared<const bignum::MontgomeryContext>(p_);
  }
  if (q_.isOdd() && q_ > BigUint(1)) {
    qCtx_ = std::make_shared<const bignum::MontgomeryContext>(q_);
  }
}

DlogGroup DlogGroup::generate(std::size_t bits, util::Rng& rng) {
  const BigUint p = bignum::randomSafePrime(bits, rng);
  const BigUint q = (p - BigUint(1)) >> 1;
  const BigUint g = mulMod(BigUint(2), BigUint(2), p);
  return DlogGroup(p, q, g);
}

const DlogGroup& DlogGroup::cached(std::size_t bits) {
  static std::mutex mutex;
  static std::map<std::size_t, DlogGroup> groups;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = groups.find(bits);
  if (it != groups.end()) return it->second;
  const char* hex = nullptr;
  switch (bits) {
    case 256: hex = kP256; break;
    case 512: hex = kP512; break;
    case 1024: hex = kP1024; break;
    case 2048: hex = kP2048; break;
    default:
      throw util::CryptoError("DlogGroup::cached: unsupported size");
  }
  return groups.emplace(bits, fromSafePrime(hex)).first->second;
}

BigUint DlogGroup::exp(const BigUint& e) const {
  // Exponents are scalars < q < p, so a p-bit table covers every call; wider
  // exponents (none in practice) fall back to generic powMod inside pow().
  return fixedBasePowerTable(g_, p_, p_.bitLength()).pow(e);
}

BigUint DlogGroup::exp(const BigUint& b, const BigUint& e) const {
  // The cached context skips the per-call R^2 setup division that a plain
  // powMod(b, e, p_) would pay; the value is identical.
  if (pCtx_) return pCtx_->powMod(b, e);
  return powMod(b, e, p_);
}

BigUint DlogGroup::mul(const BigUint& a, const BigUint& b) const {
  if (pCtx_) return pCtx_->mulMod(a, b);
  return mulMod(a, b, p_);
}

BigUint DlogGroup::inv(const BigUint& a) const {
  const auto result = invMod(a, p_);
  if (!result) throw util::CryptoError("DlogGroup::inv: not a unit");
  return *result;
}

BigUint DlogGroup::randomScalar(util::Rng& rng) const {
  while (true) {
    const BigUint s = bignum::randomBelow(q_, rng);
    if (!s.isZero()) return s;
  }
}

BigUint DlogGroup::scalarInv(const BigUint& s) const {
  const auto result = invMod(s, q_);
  if (!result) throw util::CryptoError("DlogGroup::scalarInv: not invertible");
  return *result;
}

std::vector<BigUint> DlogGroup::scalarInvBatch(
    const std::vector<BigUint>& scalars) const {
  auto result = qCtx_ ? bignum::batchInvMod(scalars, *qCtx_)
                      : bignum::batchInvMod(scalars, q_);
  if (!result) {
    throw util::CryptoError("DlogGroup::scalarInvBatch: not invertible");
  }
  return std::move(*result);
}

BigUint DlogGroup::hashToGroup(util::BytesView input) const {
  return exp(hashToScalar(input));
}

BigUint DlogGroup::hashToScalar(util::BytesView input) const {
  // Expand to enough bytes that the reduction bias is negligible for
  // simulation purposes.
  util::Bytes material;
  util::Bytes counterInput(input.begin(), input.end());
  counterInput.push_back(0);
  const std::size_t need = elementBytes() + 16;
  while (material.size() < need) {
    counterInput.back()++;
    const auto d = crypto::sha256(counterInput);
    material.insert(material.end(), d.begin(), d.end());
  }
  material.resize(need);
  return BigUint::fromBytes(material) % q_;
}

bool DlogGroup::isElement(const BigUint& x) const {
  if (x.isZero() || x >= p_) return false;
  // For a safe prime p = 2q + 1 the order-q subgroup is exactly the set of
  // quadratic residues mod p, so a binary Jacobi symbol (O(bits^2)) answers
  // membership without the O(bits^3) Euler-criterion exponentiation. Every
  // group this library ships is a safe-prime group, but the guard keeps the
  // slow path correct for arbitrary (p, q) pairs constructed by tests.
  if (p_.isOdd() && p_ == (q_ << 1) + BigUint(1)) {
    return bignum::jacobi(x, p_) == 1;
  }
  if (pCtx_) return pCtx_->powMod(x, q_) == BigUint(1);
  return powMod(x, q_, p_) == BigUint(1);
}

}  // namespace dosn::pkcrypto
