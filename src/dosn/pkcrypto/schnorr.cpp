#include "dosn/pkcrypto/schnorr.hpp"

#include <map>
#include <optional>

#include "dosn/bignum/modmath.hpp"
#include "dosn/crypto/sha256.hpp"
#include "dosn/pkcrypto/multiexp.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

using bignum::addMod;
using bignum::mulMod;

util::Bytes SchnorrPublicKey::serialize() const {
  util::Writer w;
  w.bytes(y.toBytes());
  return w.take();
}

SchnorrPrivateKey schnorrGenerate(const DlogGroup& group, util::Rng& rng) {
  const BigUint x = group.randomScalar(rng);
  return SchnorrPrivateKey{SchnorrPublicKey{group.exp(x)}, x};
}

namespace {

BigUint challengeHash(const DlogGroup& group, const BigUint& r,
                      const BigUint& y, util::BytesView message) {
  util::Writer w;
  w.bytes(r.toBytes());
  w.bytes(y.toBytes());
  w.bytes(message);
  return group.hashToScalar(w.buffer());
}

}  // namespace

util::Bytes SchnorrSignature::serialize() const {
  util::Writer w;
  w.bytes(e.toBytes());
  w.bytes(s.toBytes());
  return w.take();
}

std::optional<SchnorrSignature> SchnorrSignature::deserialize(
    util::BytesView data) {
  try {
    util::Reader r(data);
    SchnorrSignature sig;
    sig.e = BigUint::fromBytes(r.bytes());
    sig.s = BigUint::fromBytes(r.bytes());
    r.expectEnd();
    return sig;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

SchnorrSignature schnorrSign(const DlogGroup& group,
                             const SchnorrPrivateKey& key,
                             util::BytesView message, util::Rng& rng) {
  const BigUint k = group.randomScalar(rng);
  const BigUint r = group.exp(k);
  const BigUint e = challengeHash(group, r, key.pub.y, message);
  const BigUint s = addMod(k, mulMod(key.x, e, group.q()), group.q());
  return SchnorrSignature{e, s};
}

bool schnorrVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                   util::BytesView message, const SchnorrSignature& sig) {
  if (sig.s >= group.q() || sig.e >= group.q()) return false;
  if (!group.isElement(key.y)) return false;
  // r' = g^s * y^{-e}, with y^{-e} computed as y^{q-e}: the isElement check
  // just established y^q == 1, so the extended-Euclid inversion of the
  // historical path is unnecessary (e == 0 gives y^q == 1 == y^0 inverted).
  const BigUint gs = group.exp(sig.s);
  const BigUint ypow = group.exp(key.y, group.q() - sig.e);
  const BigUint r = group.mul(gs, ypow);
  return challengeHash(group, r, key.y, message) == sig.e;
}

std::vector<bool> schnorrVerifyBatch(
    const DlogGroup& group, const std::vector<SchnorrBatchItem>& items) {
  std::vector<bool> out(items.size(), false);
  if (items.empty()) return out;

  // Bucket item indices by public key: subgroup membership — a full q-bit
  // exponentiation, the single most expensive step of one-by-one
  // verification — is paid once per DISTINCT key.
  std::map<BigUint, std::vector<std::size_t>> byKey;
  for (std::size_t i = 0; i < items.size(); ++i) {
    byKey[items[i].key.y].push_back(i);
  }

  // A fixed-base window table costs ~3 exponentiations to build and ~0.25
  // per pow() afterwards, so it pays for itself from 4 items per key up
  // (single-author feed pages land here).
  constexpr std::size_t kTableThreshold = 4;

  for (const auto& [y, idxs] : byKey) {
    if (!group.isElement(y)) continue;  // every item under this key rejects
    std::optional<bignum::FixedBasePowerTable> yTable;
    if (idxs.size() >= kTableThreshold) {
      yTable.emplace(y, group.p(), group.p().bitLength());
    }
    for (const std::size_t i : idxs) {
      const SchnorrSignature& sig = items[i].sig;
      if (sig.s >= group.q() || sig.e >= group.q()) continue;
      const BigUint qe = group.q() - sig.e;  // y^{-e} == y^{q-e}, as above
      const BigUint ypow = yTable ? yTable->pow(qe) : group.exp(y, qe);
      const BigUint r = group.mul(group.exp(sig.s), ypow);
      bool ok = challengeHash(group, r, y, items[i].message) == sig.e;
      if (!ok) {
        // Fallback contract: the retained one-by-one path arbitrates every
        // rejection, so a batch "no" is always a single-verify "no".
        ok = schnorrVerify(group, items[i].key, items[i].message, sig);
      }
      out[i] = ok;
    }
  }
  return out;
}

SchnorrProver::SchnorrProver(const DlogGroup& group,
                             const SchnorrPrivateKey& key, util::Rng& rng)
    : group_(group), key_(key), k_(group.randomScalar(rng)), r_(group.exp(k_)) {}

BigUint SchnorrProver::respond(const BigUint& challenge) const {
  return addMod(k_, mulMod(key_.x, challenge, group_.q()), group_.q());
}

SchnorrVerifier::SchnorrVerifier(const DlogGroup& group, SchnorrPublicKey key,
                                 const BigUint& commitment, util::Rng& rng)
    : group_(group),
      key_(std::move(key)),
      r_(commitment),
      c_(group.randomScalar(rng)) {}

bool SchnorrVerifier::check(const BigUint& response) const {
  if (!group_.isElement(r_)) return false;
  const BigUint lhs = group_.exp(response);
  const BigUint rhs = group_.mul(r_, group_.exp(key_.y, c_));
  return lhs == rhs;
}

util::Bytes SchnorrProof::serialize() const {
  util::Writer w;
  w.bytes(r.toBytes());
  w.bytes(s.toBytes());
  return w.take();
}

std::optional<SchnorrProof> SchnorrProof::deserialize(util::BytesView data) {
  try {
    util::Reader rd(data);
    SchnorrProof p;
    p.r = BigUint::fromBytes(rd.bytes());
    p.s = BigUint::fromBytes(rd.bytes());
    rd.expectEnd();
    return p;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

SchnorrProof schnorrProve(const DlogGroup& group, const SchnorrPrivateKey& key,
                          util::BytesView context, util::Rng& rng) {
  const BigUint k = group.randomScalar(rng);
  const BigUint r = group.exp(k);
  const BigUint c = challengeHash(group, r, key.pub.y, context);
  const BigUint s = addMod(k, mulMod(key.x, c, group.q()), group.q());
  return SchnorrProof{r, s};
}

bool schnorrProofVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                        util::BytesView context, const SchnorrProof& proof) {
  // A full isElement(r) is unnecessary: with r in canonical range, y in the
  // subgroup and the equation g^s == r * y^c holding, r equals the subgroup
  // element g^s * y^{-c} — so r's membership is implied, and when the
  // equation fails we reject regardless. Accept set is identical to the
  // historical explicit-check version, one q-bit exponentiation cheaper.
  if (proof.r.isZero() || proof.r >= group.p()) return false;
  if (!group.isElement(key.y)) return false;
  if (proof.s >= group.q()) return false;
  const BigUint c = challengeHash(group, proof.r, key.y, context);
  const BigUint lhs = group.exp(proof.s);
  const BigUint rhs = group.mul(proof.r, group.exp(key.y, c));
  return lhs == rhs;
}

std::vector<bool> schnorrProofVerifyBatch(
    const DlogGroup& group, const std::vector<SchnorrProofBatchItem>& items) {
  std::vector<bool> out(items.size(), false);
  if (items.empty()) return out;
  const bignum::MontgomeryContext* ctx = group.montContext();
  if (!ctx || items.size() == 1) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      out[i] = schnorrProofVerify(group, items[i].key, items[i].context,
                                  items[i].proof);
    }
    return out;
  }

  // Structural pass: s < q per item, y in the subgroup once per distinct
  // key, and r in the subgroup per item. r's membership must be EXPLICIT
  // here (unlike the single path): the combined equation only constrains the
  // product of the r_i^{z_i}, so an order-2 component on one r_i could
  // vanish under an even z_i instead of forcing a rejection.
  std::map<BigUint, bool> keyOk;
  std::vector<std::size_t> live;
  std::vector<BigUint> challenges(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto [it, inserted] = keyOk.try_emplace(items[i].key.y, false);
    if (inserted) it->second = group.isElement(items[i].key.y);
    if (!it->second) continue;
    if (items[i].proof.s >= group.q()) continue;
    if (!group.isElement(items[i].proof.r)) continue;
    challenges[i] =
        challengeHash(group, items[i].proof.r, items[i].key.y, items[i].context);
    live.push_back(i);
  }
  if (live.empty()) return out;

  // 128-bit coefficients z_i from a hash over the whole batch: deterministic
  // (no RNG consumed — seeded simulations stay byte-identical) and fixed
  // only after every item is, so no item can be chosen against its z.
  util::Writer seedW;
  for (const std::size_t i : live) {
    seedW.bytes(items[i].key.y.toBytes());
    seedW.bytes(items[i].context);
    seedW.bytes(items[i].proof.r.toBytes());
    seedW.bytes(items[i].proof.s.toBytes());
  }
  const auto seed = crypto::sha256(seedW.buffer());

  BigUint sSum{};
  std::vector<PowTerm> terms;
  terms.reserve(live.size() + keyOk.size());
  // The r_i are distinct per proof, but keys repeat across an access page
  // (one pseudonym opening an album); since y^q == 1 held above, all of one
  // key's terms fold into a single y^{sum z_i c_i mod q}, leaving only the
  // short 128-bit z_i exponents on the per-item side.
  std::map<BigUint, BigUint> keyExponent;
  for (std::size_t k = 0; k < live.size(); ++k) {
    const std::size_t i = live[k];
    util::Writer zw;
    zw.raw(util::BytesView(seed.data(), seed.size()));
    zw.u64(static_cast<std::uint64_t>(k));
    const auto digest = crypto::sha256(zw.buffer());
    BigUint z = BigUint::fromBytes(util::BytesView(digest.data(), 16));
    if (z.isZero()) z = BigUint(1);
    sSum = addMod(sSum, mulMod(z, items[i].proof.s, group.q()), group.q());
    terms.push_back(PowTerm{items[i].proof.r, z});
    BigUint& acc = keyExponent[items[i].key.y];
    acc = addMod(acc, mulMod(z, challenges[i], group.q()), group.q());
  }
  for (const auto& [y, e] : keyExponent) terms.push_back(PowTerm{y, e});

  // g^{sum z_i s_i} == prod r_i^{z_i} * prod_y y^{sum z_i c_i}: all variable
  // bases share one squaring chain (multiPowMod), and the g side rides the
  // cached fixed-base table.
  const BigUint lhs = group.exp(sSum);
  const BigUint rhs = multiPowMod(*ctx, terms);
  if (lhs == rhs) {
    for (const std::size_t i : live) out[i] = true;
    return out;
  }
  // Fallback contract: a failed combined check isolates the offender(s) by
  // re-verifying every structurally-sound item one-by-one.
  for (const std::size_t i : live) {
    out[i] = schnorrProofVerify(group, items[i].key, items[i].context,
                                items[i].proof);
  }
  return out;
}

}  // namespace dosn::pkcrypto
