#include "dosn/pkcrypto/schnorr.hpp"

#include "dosn/bignum/modmath.hpp"
#include "dosn/crypto/sha256.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

using bignum::addMod;
using bignum::mulMod;

util::Bytes SchnorrPublicKey::serialize() const {
  util::Writer w;
  w.bytes(y.toBytes());
  return w.take();
}

SchnorrPrivateKey schnorrGenerate(const DlogGroup& group, util::Rng& rng) {
  const BigUint x = group.randomScalar(rng);
  return SchnorrPrivateKey{SchnorrPublicKey{group.exp(x)}, x};
}

namespace {

BigUint challengeHash(const DlogGroup& group, const BigUint& r,
                      const BigUint& y, util::BytesView message) {
  util::Writer w;
  w.bytes(r.toBytes());
  w.bytes(y.toBytes());
  w.bytes(message);
  return group.hashToScalar(w.buffer());
}

}  // namespace

util::Bytes SchnorrSignature::serialize() const {
  util::Writer w;
  w.bytes(e.toBytes());
  w.bytes(s.toBytes());
  return w.take();
}

std::optional<SchnorrSignature> SchnorrSignature::deserialize(
    util::BytesView data) {
  try {
    util::Reader r(data);
    SchnorrSignature sig;
    sig.e = BigUint::fromBytes(r.bytes());
    sig.s = BigUint::fromBytes(r.bytes());
    r.expectEnd();
    return sig;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

SchnorrSignature schnorrSign(const DlogGroup& group,
                             const SchnorrPrivateKey& key,
                             util::BytesView message, util::Rng& rng) {
  const BigUint k = group.randomScalar(rng);
  const BigUint r = group.exp(k);
  const BigUint e = challengeHash(group, r, key.pub.y, message);
  const BigUint s = addMod(k, mulMod(key.x, e, group.q()), group.q());
  return SchnorrSignature{e, s};
}

bool schnorrVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                   util::BytesView message, const SchnorrSignature& sig) {
  if (sig.s >= group.q() || sig.e >= group.q()) return false;
  if (!group.isElement(key.y)) return false;
  // r' = g^s * y^{-e}
  const BigUint gs = group.exp(sig.s);
  const BigUint ye = group.exp(key.y, sig.e);
  const BigUint r = group.mul(gs, group.inv(ye));
  return challengeHash(group, r, key.y, message) == sig.e;
}

SchnorrProver::SchnorrProver(const DlogGroup& group,
                             const SchnorrPrivateKey& key, util::Rng& rng)
    : group_(group), key_(key), k_(group.randomScalar(rng)), r_(group.exp(k_)) {}

BigUint SchnorrProver::respond(const BigUint& challenge) const {
  return addMod(k_, mulMod(key_.x, challenge, group_.q()), group_.q());
}

SchnorrVerifier::SchnorrVerifier(const DlogGroup& group, SchnorrPublicKey key,
                                 const BigUint& commitment, util::Rng& rng)
    : group_(group),
      key_(std::move(key)),
      r_(commitment),
      c_(group.randomScalar(rng)) {}

bool SchnorrVerifier::check(const BigUint& response) const {
  if (!group_.isElement(r_)) return false;
  const BigUint lhs = group_.exp(response);
  const BigUint rhs = group_.mul(r_, group_.exp(key_.y, c_));
  return lhs == rhs;
}

util::Bytes SchnorrProof::serialize() const {
  util::Writer w;
  w.bytes(r.toBytes());
  w.bytes(s.toBytes());
  return w.take();
}

std::optional<SchnorrProof> SchnorrProof::deserialize(util::BytesView data) {
  try {
    util::Reader rd(data);
    SchnorrProof p;
    p.r = BigUint::fromBytes(rd.bytes());
    p.s = BigUint::fromBytes(rd.bytes());
    rd.expectEnd();
    return p;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

SchnorrProof schnorrProve(const DlogGroup& group, const SchnorrPrivateKey& key,
                          util::BytesView context, util::Rng& rng) {
  const BigUint k = group.randomScalar(rng);
  const BigUint r = group.exp(k);
  const BigUint c = challengeHash(group, r, key.pub.y, context);
  const BigUint s = addMod(k, mulMod(key.x, c, group.q()), group.q());
  return SchnorrProof{r, s};
}

bool schnorrProofVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                        util::BytesView context, const SchnorrProof& proof) {
  if (!group.isElement(proof.r) || !group.isElement(key.y)) return false;
  if (proof.s >= group.q()) return false;
  const BigUint c = challengeHash(group, proof.r, key.y, context);
  const BigUint lhs = group.exp(proof.s);
  const BigUint rhs = group.mul(proof.r, group.exp(key.y, c));
  return lhs == rhs;
}

}  // namespace dosn::pkcrypto
