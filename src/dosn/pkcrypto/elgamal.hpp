// ElGamal public-key encryption over a DlogGroup, in two forms:
//  - textbook ElGamal on group elements (used in tests and protocol building);
//  - a DHIES-style KEM+AEAD for arbitrary byte strings (used by the ACLs).
#pragma once

#include <optional>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

struct ElGamalPublicKey {
  BigUint y;  // g^x
};

struct ElGamalPrivateKey {
  ElGamalPublicKey pub;
  BigUint x;
};

struct ElGamalKeyPair {
  ElGamalPrivateKey priv;
};

ElGamalPrivateKey elgamalGenerate(const DlogGroup& group, util::Rng& rng);

/// Textbook ElGamal on a group element m: (c1, c2) = (g^k, m * y^k).
struct ElGamalElementCiphertext {
  BigUint c1;
  BigUint c2;
};
ElGamalElementCiphertext elgamalEncryptElement(const DlogGroup& group,
                                               const ElGamalPublicKey& key,
                                               const BigUint& m,
                                               util::Rng& rng);
BigUint elgamalDecryptElement(const DlogGroup& group,
                              const ElGamalPrivateKey& key,
                              const ElGamalElementCiphertext& ct);

/// DHIES-style byte encryption: c1 = g^k, then AEAD under HKDF(y^k).
util::Bytes elgamalEncrypt(const DlogGroup& group, const ElGamalPublicKey& key,
                           util::BytesView plaintext, util::Rng& rng);
std::optional<util::Bytes> elgamalDecrypt(const DlogGroup& group,
                                          const ElGamalPrivateKey& key,
                                          util::BytesView ciphertext);

}  // namespace dosn::pkcrypto
