#include "dosn/pkcrypto/rsa.hpp"

#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/prime.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/crypto/sha256.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

using bignum::gcd;
using bignum::invMod;
using bignum::powMod;

util::Bytes RsaPublicKey::serialize() const {
  util::Writer w;
  w.bytes(n.toBytes());
  w.bytes(e.toBytes());
  return w.take();
}

RsaPublicKey RsaPublicKey::deserialize(util::BytesView data) {
  util::Reader r(data);
  RsaPublicKey key;
  key.n = BigUint::fromBytes(r.bytes());
  key.e = BigUint::fromBytes(r.bytes());
  r.expectEnd();
  return key;
}

util::Bytes RsaPrivateKey::serialize() const {
  util::Writer w;
  w.bytes(pub.n.toBytes());
  w.bytes(pub.e.toBytes());
  w.bytes(d.toBytes());
  // CRT tail is optional: keys from the pre-CRT format simply end here, and
  // deserialize treats the absence as "no CRT params".
  if (hasCrt()) {
    w.bytes(p.toBytes());
    w.bytes(q.toBytes());
    w.bytes(dP.toBytes());
    w.bytes(dQ.toBytes());
    w.bytes(qInv.toBytes());
  }
  return w.take();
}

RsaPrivateKey RsaPrivateKey::deserialize(util::BytesView data) {
  util::Reader r(data);
  RsaPrivateKey key;
  key.pub.n = BigUint::fromBytes(r.bytes());
  key.pub.e = BigUint::fromBytes(r.bytes());
  key.d = BigUint::fromBytes(r.bytes());
  if (!r.atEnd()) {
    key.p = BigUint::fromBytes(r.bytes());
    key.q = BigUint::fromBytes(r.bytes());
    key.dP = BigUint::fromBytes(r.bytes());
    key.dQ = BigUint::fromBytes(r.bytes());
    key.qInv = BigUint::fromBytes(r.bytes());
  }
  r.expectEnd();
  return key;
}

RsaPrivateKey rsaGenerate(std::size_t bits, util::Rng& rng) {
  if (bits < 128) throw util::CryptoError("rsaGenerate: key too small");
  const BigUint e(65537);
  while (true) {
    const BigUint p = bignum::randomPrime(bits / 2, rng);
    const BigUint q = bignum::randomPrime(bits - bits / 2, rng);
    if (p == q) continue;
    const BigUint n = p * q;
    const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    if (gcd(e, phi) != BigUint(1)) continue;
    const auto d = invMod(e, phi);
    if (!d) continue;
    const auto qInv = invMod(q, p);
    if (!qInv) continue;  // p != q primes, so this never fails in practice
    RsaPrivateKey key;
    key.pub = RsaPublicKey{n, e};
    key.d = *d;
    key.p = p;
    key.q = q;
    key.dP = *d % (p - BigUint(1));
    key.dQ = *d % (q - BigUint(1));
    key.qInv = *qInv;
    return key;
  }
}

namespace {

constexpr std::size_t kSeedLen = 16;

// Two-round Feistel "OAEP-lite": db = payload block, masked with
// HKDF(seed); seed masked with HKDF(maskedDb).
util::Bytes mask(util::BytesView key, std::string_view label, std::size_t len) {
  return crypto::hkdf(key, {}, util::toBytes(label), len);
}

}  // namespace

util::Bytes rsaEncrypt(const RsaPublicKey& key, util::BytesView plaintext,
                       util::Rng& rng) {
  const std::size_t k = key.modulusBytes();
  if (k < 2 * kSeedLen + 2 || plaintext.size() > k - 2 * kSeedLen - 2) {
    throw util::CryptoError("rsaEncrypt: plaintext too long for modulus");
  }
  // db = lHash(32, zero here) is omitted; layout: PS(0x00..) || 0x01 || M.
  util::Bytes db(k - kSeedLen - 1 - plaintext.size() - 1, 0);
  db.push_back(0x01);
  db.insert(db.end(), plaintext.begin(), plaintext.end());

  const util::Bytes seed = rng.bytes(kSeedLen);
  const util::Bytes maskedDb = util::xorBytes(db, mask(seed, "oaep-db", db.size()));
  const util::Bytes maskedSeed =
      util::xorBytes(seed, mask(maskedDb, "oaep-seed", kSeedLen));

  util::Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), maskedSeed.begin(), maskedSeed.end());
  em.insert(em.end(), maskedDb.begin(), maskedDb.end());

  const BigUint m = BigUint::fromBytes(em);
  return rsaRawPublic(key, m).toBytesPadded(k);
}

std::optional<util::Bytes> rsaDecrypt(const RsaPrivateKey& key,
                                      util::BytesView ciphertext) {
  const std::size_t k = key.pub.modulusBytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigUint c = BigUint::fromBytes(ciphertext);
  if (c >= key.pub.n) return std::nullopt;
  const util::Bytes em = rsaRawPrivate(key, c).toBytesPadded(k);
  if (em[0] != 0x00) return std::nullopt;
  const util::BytesView maskedSeed = util::BytesView(em).subspan(1, kSeedLen);
  const util::BytesView maskedDb = util::BytesView(em).subspan(1 + kSeedLen);

  const util::Bytes seed =
      util::xorBytes(maskedSeed, mask(maskedDb, "oaep-seed", kSeedLen));
  const util::Bytes db =
      util::xorBytes(maskedDb, mask(seed, "oaep-db", maskedDb.size()));

  // Find the 0x01 separator after the zero padding.
  std::size_t i = 0;
  while (i < db.size() && db[i] == 0x00) ++i;
  if (i == db.size() || db[i] != 0x01) return std::nullopt;
  return util::Bytes(db.begin() + static_cast<std::ptrdiff_t>(i + 1), db.end());
}

namespace {

// Deterministic signature padding: 0x00 0x01 0xFF.. 0x00 || digest.
BigUint signaturePadding(const RsaPublicKey& key, util::BytesView message) {
  const std::size_t k = key.modulusBytes();
  const crypto::Digest digest = crypto::sha256(message);
  if (k < digest.size() + 11) {
    throw util::CryptoError("rsa sign: modulus too small");
  }
  util::Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), k - digest.size() - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), digest.begin(), digest.end());
  return BigUint::fromBytes(em);
}

}  // namespace

util::Bytes rsaSign(const RsaPrivateKey& key, util::BytesView message) {
  const BigUint m = signaturePadding(key.pub, message);
  return rsaRawPrivate(key, m).toBytesPadded(key.pub.modulusBytes());
}

bool rsaVerify(const RsaPublicKey& key, util::BytesView message,
               util::BytesView signature) {
  if (signature.size() != key.modulusBytes()) return false;
  const BigUint s = BigUint::fromBytes(signature);
  if (s >= key.n) return false;
  return rsaRawPublic(key, s) == signaturePadding(key, message);
}

BigUint rsaRawPublic(const RsaPublicKey& key, const BigUint& x) {
  return powMod(x, key.e, key.n);
}

BigUint rsaRawPrivate(const RsaPrivateKey& key, const BigUint& x) {
  if (!key.hasCrt()) return powMod(x, key.d, key.pub.n);
  // Garner's recombination: two exponentiations at half the modulus width
  // (~4x cheaper each than the full-width one they replace).
  const BigUint m1 = powMod(x, key.dP, key.p);
  const BigUint m2 = powMod(x, key.dQ, key.q);
  const BigUint h =
      bignum::mulMod(key.qInv, bignum::subMod(m1, m2, key.p), key.p);
  return m2 + h * key.q;  // < q + (p-1)*q < p*q = n, so already reduced
}

BigUint rsaFullDomainHash(const RsaPublicKey& key, util::BytesView message) {
  // Expand the digest to modulus width + 16 bytes, then reduce mod n.
  util::Bytes material = crypto::hkdf(message, {}, util::toBytes("rsa-fdh"),
                                      key.modulusBytes() + 16);
  return BigUint::fromBytes(material) % key.n;
}

}  // namespace dosn::pkcrypto
