#include "dosn/pkcrypto/elgamal.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/crypto/hkdf.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

ElGamalPrivateKey elgamalGenerate(const DlogGroup& group, util::Rng& rng) {
  const BigUint x = group.randomScalar(rng);
  return ElGamalPrivateKey{ElGamalPublicKey{group.exp(x)}, x};
}

ElGamalElementCiphertext elgamalEncryptElement(const DlogGroup& group,
                                               const ElGamalPublicKey& key,
                                               const BigUint& m,
                                               util::Rng& rng) {
  if (m.isZero() || m >= group.p()) {
    throw util::CryptoError("elgamal: message not a group element");
  }
  const BigUint k = group.randomScalar(rng);
  return ElGamalElementCiphertext{group.exp(k),
                                  group.mul(m, group.exp(key.y, k))};
}

BigUint elgamalDecryptElement(const DlogGroup& group,
                              const ElGamalPrivateKey& key,
                              const ElGamalElementCiphertext& ct) {
  // Fermat: c1^{p-1} == 1 for any unit c1 mod the prime p, so the shared
  // secret's inverse c1^{-x} is c1^{p-1-x} — one exponentiation replaces
  // the historical exp + extended-Euclid inversion, same value. Non-unit c1
  // (≡ 0 mod p) still rejects, as inv() did.
  if ((ct.c1 % group.p()).isZero()) {
    throw util::CryptoError("elgamal: ciphertext not a unit");
  }
  const BigUint pm1 = group.p() - BigUint(1);
  const BigUint sharedInv = group.exp(ct.c1, pm1 - key.x % pm1);
  return group.mul(ct.c2, sharedInv);
}

util::Bytes elgamalEncrypt(const DlogGroup& group, const ElGamalPublicKey& key,
                           util::BytesView plaintext, util::Rng& rng) {
  const BigUint k = group.randomScalar(rng);
  const BigUint c1 = group.exp(k);
  const BigUint shared = group.exp(key.y, k);
  const util::Bytes aeadKey =
      crypto::deriveKey(shared.toBytesPadded(group.elementBytes()), "elgamal-kem");
  util::Writer w;
  w.bytes(c1.toBytes());
  w.bytes(crypto::sealWithNonce(aeadKey, plaintext, rng));
  return w.take();
}

std::optional<util::Bytes> elgamalDecrypt(const DlogGroup& group,
                                          const ElGamalPrivateKey& key,
                                          util::BytesView ciphertext) {
  try {
    util::Reader r(ciphertext);
    const BigUint c1 = BigUint::fromBytes(r.bytes());
    const util::Bytes box = r.bytes();
    r.expectEnd();
    if (c1.isZero() || c1 >= group.p()) return std::nullopt;
    const BigUint shared = group.exp(c1, key.x);
    const util::Bytes aeadKey = crypto::deriveKey(
        shared.toBytesPadded(group.elementBytes()), "elgamal-kem");
    return crypto::openWithNonce(aeadKey, box);
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

}  // namespace dosn::pkcrypto
