// RSA: key generation, OAEP-style encryption, hash-then-sign signatures
// (paper §III-C public key encryption, §IV digital signatures).
//
// Simulation-grade: default key sizes in tests/benches are 512-1024 bits so
// sweeps finish quickly; the relative cost ordering the paper discusses is
// preserved. See DESIGN.md §3.
#pragma once

#include <optional>

#include "dosn/bignum/biguint.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

using bignum::BigUint;

struct RsaPublicKey {
  BigUint n;
  BigUint e;

  std::size_t modulusBytes() const { return (n.bitLength() + 7) / 8; }
  util::Bytes serialize() const;
  static RsaPublicKey deserialize(util::BytesView data);
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigUint d;

  // CRT acceleration (RFC 8017 §3.2): two half-size exponentiations instead
  // of one full-size one. Populated by rsaGenerate; zero on keys
  // deserialized from the pre-CRT wire format, in which case rsaRawPrivate
  // falls back to the plain x^d mod n path.
  BigUint p;     // first prime factor
  BigUint q;     // second prime factor
  BigUint dP;    // d mod (p-1)
  BigUint dQ;    // d mod (q-1)
  BigUint qInv;  // q^{-1} mod p

  bool hasCrt() const { return !p.isZero(); }
  /// Copy with the CRT fields stripped — the plain-path reference for
  /// differential tests and benchmarks.
  RsaPrivateKey withoutCrt() const {
    RsaPrivateKey plain;
    plain.pub = pub;
    plain.d = d;
    return plain;
  }

  util::Bytes serialize() const;
  static RsaPrivateKey deserialize(util::BytesView data);
};

/// Generates an RSA key pair with an n of `bits` bits (e = 65537).
RsaPrivateKey rsaGenerate(std::size_t bits, util::Rng& rng);

/// OAEP-style encryption. Plaintext must fit: size <= modulusBytes - 2*16 - 2.
util::Bytes rsaEncrypt(const RsaPublicKey& key, util::BytesView plaintext,
                       util::Rng& rng);

/// Returns std::nullopt if padding doesn't verify.
std::optional<util::Bytes> rsaDecrypt(const RsaPrivateKey& key,
                                      util::BytesView ciphertext);

/// Hash-then-sign: SHA-256 digest, deterministic PKCS#1-v1.5-style padding.
util::Bytes rsaSign(const RsaPrivateKey& key, util::BytesView message);

bool rsaVerify(const RsaPublicKey& key, util::BytesView message,
               util::BytesView signature);

/// Textbook RSA on integers — exposed for the blind-signature protocol.
BigUint rsaRawPublic(const RsaPublicKey& key, const BigUint& x);
BigUint rsaRawPrivate(const RsaPrivateKey& key, const BigUint& x);

/// Full-domain hash of a message into Z_n (used by blind signatures).
BigUint rsaFullDomainHash(const RsaPublicKey& key, util::BytesView message);

}  // namespace dosn::pkcrypto
