// Discrete-log group parameters: a safe prime p = 2q + 1 and a generator g of
// the order-q subgroup of quadratic residues. Shared by ElGamal, Schnorr, DH
// and the OPRF.
//
// Cached parameter sets avoid regenerating safe primes in tests/benches:
// 256/512-bit groups were generated once with dosn::bignum::randomSafePrime
// (seed 42); 1024/2048-bit groups are the RFC 2409 / RFC 3526 MODP groups.
#pragma once

#include <memory>
#include <vector>

#include "dosn/bignum/biguint.hpp"
#include "dosn/bignum/modmath.hpp"
#include "dosn/bignum/montgomery.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

using bignum::BigUint;

/// Process-wide cache of fixed-base exponentiation tables, keyed on (base,
/// modulus). The first g^x for a given (g, p) pays the table build (~4x one
/// exponentiation); every later call — DH handshakes, ElGamal encryptions,
/// Schnorr commitments, OPRF evaluations — runs with no squarings at all.
/// Entries live for the process lifetime, so the reference stays valid.
const bignum::FixedBasePowerTable& fixedBasePowerTable(
    const BigUint& base, const BigUint& modulus, std::size_t maxExponentBits);

class DlogGroup {
 public:
  DlogGroup(BigUint p, BigUint q, BigUint g);

  /// Fresh parameters (expensive: safe-prime search).
  static DlogGroup generate(std::size_t bits, util::Rng& rng);

  /// Cached parameters; bits must be one of 256, 512, 1024, 2048.
  static const DlogGroup& cached(std::size_t bits);

  const BigUint& p() const { return p_; }
  const BigUint& q() const { return q_; }
  const BigUint& g() const { return g_; }

  /// g^e mod p.
  BigUint exp(const BigUint& e) const;
  /// b^e mod p.
  BigUint exp(const BigUint& b, const BigUint& e) const;
  /// a*b mod p.
  BigUint mul(const BigUint& a, const BigUint& b) const;
  /// a^{-1} mod p (a must be a unit).
  BigUint inv(const BigUint& a) const;
  /// Uniform scalar in [1, q-1].
  BigUint randomScalar(util::Rng& rng) const;
  /// Scalar inverse mod q.
  BigUint scalarInv(const BigUint& s) const;
  /// All scalar inverses mod q in one extended-Euclid call (Montgomery's
  /// batch-inversion trick, bignum/batch.hpp); element i equals
  /// scalarInv(scalars[i]) byte-for-byte. Throws if any scalar is not
  /// invertible.
  std::vector<BigUint> scalarInvBatch(const std::vector<BigUint>& scalars) const;
  /// Hash arbitrary bytes to a group element: g^{H(x) mod q}.
  BigUint hashToGroup(util::BytesView input) const;
  /// Hash arbitrary bytes to a scalar mod q.
  BigUint hashToScalar(util::BytesView input) const;
  /// True if x is in [1, p-1] and x^q == 1 (i.e., in the prime-order
  /// subgroup).
  bool isElement(const BigUint& x) const;

  /// Serialized element width in bytes (elements are fixed-width encoded).
  std::size_t elementBytes() const { return (p_.bitLength() + 7) / 8; }

  /// The group's cached Montgomery context for p — shared by exp/mul/
  /// isElement so no caller pays the R^2 setup division per operation.
  /// Null only if p is even (never for a valid safe prime).
  const bignum::MontgomeryContext* montContext() const { return pCtx_.get(); }

 private:
  BigUint p_;
  BigUint q_;
  BigUint g_;
  // Built once in the constructor; copies of the group share them. Null when
  // the respective modulus is even (degenerate parameters only).
  std::shared_ptr<const bignum::MontgomeryContext> pCtx_;
  std::shared_ptr<const bignum::MontgomeryContext> qCtx_;
};

}  // namespace dosn::pkcrypto
