// Schnorr signatures (Fiat-Shamir) and the interactive Schnorr identification
// protocol — the zero-knowledge proof of the paper's §V-B: proving knowledge
// of the secret behind a pseudonym without revealing it.
#pragma once

#include <optional>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

struct SchnorrPublicKey {
  BigUint y;  // g^x
  util::Bytes serialize() const;
};

struct SchnorrPrivateKey {
  SchnorrPublicKey pub;
  BigUint x;
};

SchnorrPrivateKey schnorrGenerate(const DlogGroup& group, util::Rng& rng);

struct SchnorrSignature {
  BigUint e;  // challenge = H(r || y || m) mod q
  BigUint s;  // response  = k + x*e mod q

  util::Bytes serialize() const;
  static std::optional<SchnorrSignature> deserialize(util::BytesView data);
};

SchnorrSignature schnorrSign(const DlogGroup& group,
                             const SchnorrPrivateKey& key,
                             util::BytesView message, util::Rng& rng);

bool schnorrVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                   util::BytesView message, const SchnorrSignature& sig);

/// Interactive Schnorr identification (honest-verifier ZKP).
///
///   Prover                         Verifier
///   k <- Zq, r = g^k   --r-->
///                      <--c--      c <- Zq
///   s = k + x*c        --s-->      accept iff g^s == r * y^c
class SchnorrProver {
 public:
  SchnorrProver(const DlogGroup& group, const SchnorrPrivateKey& key,
                util::Rng& rng);

  const BigUint& commitment() const { return r_; }
  BigUint respond(const BigUint& challenge) const;

 private:
  const DlogGroup& group_;
  const SchnorrPrivateKey& key_;
  BigUint k_;
  BigUint r_;
};

class SchnorrVerifier {
 public:
  SchnorrVerifier(const DlogGroup& group, SchnorrPublicKey key,
                  const BigUint& commitment, util::Rng& rng);

  const BigUint& challenge() const { return c_; }
  bool check(const BigUint& response) const;

 private:
  const DlogGroup& group_;
  SchnorrPublicKey key_;
  BigUint r_;
  BigUint c_;
};

/// Non-interactive proof of knowledge of x for y = g^x, bound to a context
/// string (Fiat-Shamir transform of the identification protocol).
struct SchnorrProof {
  BigUint r;
  BigUint s;
  util::Bytes serialize() const;
  static std::optional<SchnorrProof> deserialize(util::BytesView data);
};

SchnorrProof schnorrProve(const DlogGroup& group, const SchnorrPrivateKey& key,
                          util::BytesView context, util::Rng& rng);

bool schnorrProofVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                        util::BytesView context, const SchnorrProof& proof);

}  // namespace dosn::pkcrypto
