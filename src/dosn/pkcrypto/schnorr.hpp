// Schnorr signatures (Fiat-Shamir) and the interactive Schnorr identification
// protocol — the zero-knowledge proof of the paper's §V-B: proving knowledge
// of the secret behind a pseudonym without revealing it.
#pragma once

#include <optional>
#include <vector>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

struct SchnorrPublicKey {
  BigUint y;  // g^x
  util::Bytes serialize() const;
};

struct SchnorrPrivateKey {
  SchnorrPublicKey pub;
  BigUint x;
};

SchnorrPrivateKey schnorrGenerate(const DlogGroup& group, util::Rng& rng);

struct SchnorrSignature {
  BigUint e;  // challenge = H(r || y || m) mod q
  BigUint s;  // response  = k + x*e mod q

  util::Bytes serialize() const;
  static std::optional<SchnorrSignature> deserialize(util::BytesView data);
};

SchnorrSignature schnorrSign(const DlogGroup& group,
                             const SchnorrPrivateKey& key,
                             util::BytesView message, util::Rng& rng);

bool schnorrVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                   util::BytesView message, const SchnorrSignature& sig);

/// One (key, message, signature) triple of a batched verification.
struct SchnorrBatchItem {
  SchnorrPublicKey key;
  util::Bytes message;
  SchnorrSignature sig;
};

/// Verifies a page of signatures; result[i] == schnorrVerify(item i) for
/// every i (same accept set — batching here is amortization, not a
/// probabilistic check, because the compact (e, s) form pins each r_i
/// through the challenge hash; DESIGN.md §3g).
///
/// Cost wins over one-by-one: subgroup membership of each DISTINCT key is
/// checked once per batch instead of per item; keys appearing >= 4 times get
/// a per-batch fixed-base window table (feed pages are single-author, so
/// this is the common case); and y^{-e} is computed inversion-free as
/// y^{q-e}. Items failing the challenge-hash check are re-verified through
/// plain schnorrVerify, so the one-by-one path remains the arbiter of every
/// rejection (fallback contract).
std::vector<bool> schnorrVerifyBatch(const DlogGroup& group,
                                     const std::vector<SchnorrBatchItem>& items);

/// Interactive Schnorr identification (honest-verifier ZKP).
///
///   Prover                         Verifier
///   k <- Zq, r = g^k   --r-->
///                      <--c--      c <- Zq
///   s = k + x*c        --s-->      accept iff g^s == r * y^c
class SchnorrProver {
 public:
  SchnorrProver(const DlogGroup& group, const SchnorrPrivateKey& key,
                util::Rng& rng);

  const BigUint& commitment() const { return r_; }
  BigUint respond(const BigUint& challenge) const;

 private:
  const DlogGroup& group_;
  const SchnorrPrivateKey& key_;
  BigUint k_;
  BigUint r_;
};

class SchnorrVerifier {
 public:
  SchnorrVerifier(const DlogGroup& group, SchnorrPublicKey key,
                  const BigUint& commitment, util::Rng& rng);

  const BigUint& challenge() const { return c_; }
  bool check(const BigUint& response) const;

 private:
  const DlogGroup& group_;
  SchnorrPublicKey key_;
  BigUint r_;
  BigUint c_;
};

/// Non-interactive proof of knowledge of x for y = g^x, bound to a context
/// string (Fiat-Shamir transform of the identification protocol).
struct SchnorrProof {
  BigUint r;
  BigUint s;
  util::Bytes serialize() const;
  static std::optional<SchnorrProof> deserialize(util::BytesView data);
};

SchnorrProof schnorrProve(const DlogGroup& group, const SchnorrPrivateKey& key,
                          util::BytesView context, util::Rng& rng);

bool schnorrProofVerify(const DlogGroup& group, const SchnorrPublicKey& key,
                        util::BytesView context, const SchnorrProof& proof);

/// One (key, context, proof) triple of a batched proof verification.
struct SchnorrProofBatchItem {
  SchnorrPublicKey key;
  util::Bytes context;
  SchnorrProof proof;
};

/// Verifies a page of non-interactive proofs with random-linear-combination
/// batching: after per-item structural checks (r, y in the subgroup, s < q),
/// one combined equation
///
///   g^{sum z_i s_i mod q}  ==  prod r_i^{z_i} * prod y_i^{z_i c_i mod q}
///
/// is evaluated via multiPowMod, with 128-bit coefficients z_i derived
/// deterministically by hashing the whole batch (no RNG is consumed — seeded
/// simulation runs stay byte-identical). If the combined check fails, every
/// structurally-sound item is re-verified one-by-one to isolate the
/// offender(s), so a rejection is always attributed exactly. An invalid
/// batch passing the combined check requires a hash-targeted cancellation
/// across items (probability ~ n * 2^-128); see DESIGN.md §3g.
std::vector<bool> schnorrProofVerifyBatch(
    const DlogGroup& group, const std::vector<SchnorrProofBatchItem>& items);

}  // namespace dosn::pkcrypto
