// Diffie-Hellman key agreement over a DlogGroup, with HKDF key derivation.
// Used for pairwise friend keys (out-of-band key establishment, paper §IV-A).
#pragma once

#include "dosn/pkcrypto/group.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

struct DhKeyPair {
  BigUint secret;   // a
  BigUint open;     // g^a
};

DhKeyPair dhGenerate(const DlogGroup& group, util::Rng& rng);

/// Raw shared element (peerOpen)^secret.
BigUint dhSharedElement(const DlogGroup& group, const DhKeyPair& mine,
                        const BigUint& peerOpen);

/// 32-byte symmetric key derived from the shared element.
util::Bytes dhSharedKey(const DlogGroup& group, const DhKeyPair& mine,
                        const BigUint& peerOpen);

}  // namespace dosn::pkcrypto
