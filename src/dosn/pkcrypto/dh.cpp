#include "dosn/pkcrypto/dh.hpp"

#include "dosn/crypto/hkdf.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

DhKeyPair dhGenerate(const DlogGroup& group, util::Rng& rng) {
  const BigUint a = group.randomScalar(rng);
  return DhKeyPair{a, group.exp(a)};
}

BigUint dhSharedElement(const DlogGroup& group, const DhKeyPair& mine,
                        const BigUint& peerOpen) {
  if (!group.isElement(peerOpen)) {
    throw util::CryptoError("dh: peer value not in group");
  }
  return group.exp(peerOpen, mine.secret);
}

util::Bytes dhSharedKey(const DlogGroup& group, const DhKeyPair& mine,
                        const BigUint& peerOpen) {
  const BigUint shared = dhSharedElement(group, mine, peerOpen);
  return crypto::deriveKey(shared.toBytesPadded(group.elementBytes()), "dh");
}

}  // namespace dosn::pkcrypto
