// Multi-exponentiation (Shamir's trick / Strauss interleaving): evaluate
// products of powers b1^e1 * b2^e2 * ... mod p sharing ONE squaring chain
// instead of one per term. With k terms of n-bit exponents the naive route
// costs ~k*n squarings + k*n/2 multiplies; interleaving costs n squarings +
// k*n/2 multiplies — the squaring work is amortized k-fold.
//
// Consumers: the random-linear-combination combined check in
// schnorrProofVerifyBatch (2k variable bases per batch) and Schnorr/ElGamal
// verification shapes of the form g^s * y^e.
#pragma once

#include <vector>

#include "dosn/bignum/biguint.hpp"
#include "dosn/bignum/montgomery.hpp"

namespace dosn::pkcrypto {

using bignum::BigUint;

/// One base^exponent term of a multi-exponentiation product.
struct PowTerm {
  BigUint base;
  BigUint exponent;
};

/// b1^e1 * b2^e2 mod ctx.modulus() — Shamir's trick with the joint 2-bit
/// window {b1, b2, b1*b2}; equals powModSimple(b1,e1,m) * powModSimple(
/// b2,e2,m) mod m.
BigUint dualPowMod(const bignum::MontgomeryContext& ctx, const BigUint& b1,
                   const BigUint& e1, const BigUint& b2, const BigUint& e2);

/// Product of terms[i].base ^ terms[i].exponent mod ctx.modulus(), bit-serial
/// Strauss interleaving: one shared squaring chain over the widest exponent
/// plus one multiply per set exponent bit across all terms. Empty input
/// returns 1 mod m.
BigUint multiPowMod(const bignum::MontgomeryContext& ctx,
                    const std::vector<PowTerm>& terms);

}  // namespace dosn::pkcrypto
