// Oblivious PRF (2HashDH): the protocol of the paper's §III-F, where a
// receiver learns f_s(x) = H2(x, H1(x)^s) without revealing x to the sender,
// and the sender reveals nothing about s beyond the single evaluation.
//
//   Receiver: r <- Zq,  a = H1(x)^r            --a-->
//   Sender:                                     b = a^s
//   Receiver: f = H2(x, b^{1/r})               <--b--
#pragma once

#include <vector>

#include "dosn/pkcrypto/group.hpp"
#include "dosn/util/bytes.hpp"
#include "dosn/util/rng.hpp"

namespace dosn::pkcrypto {

/// Sender side: holds the PRF secret s.
class OprfSender {
 public:
  OprfSender(const DlogGroup& group, util::Rng& rng);
  OprfSender(const DlogGroup& group, BigUint secret);

  /// Blind evaluation: b = a^s. Throws if `a` is not a group element.
  BigUint evaluateBlinded(const BigUint& a) const;

  /// Direct (non-oblivious) evaluation — what the sender itself can compute.
  util::Bytes evaluate(util::BytesView input) const;

  const BigUint& secret() const { return s_; }

 private:
  const DlogGroup& group_;
  BigUint s_;
};

/// Receiver side: one instance per evaluated input.
class OprfReceiver {
 public:
  OprfReceiver(const DlogGroup& group, util::BytesView input, util::Rng& rng);

  /// First message a = H1(x)^r.
  const BigUint& blinded() const { return blinded_; }

  /// Finishes with the sender's reply; returns f_s(x).
  util::Bytes finalize(const BigUint& reply) const;

 private:
  friend std::vector<util::Bytes> oprfFinalizeBatch(
      const std::vector<const OprfReceiver*>& receivers,
      const std::vector<BigUint>& replies);

  const DlogGroup& group_;
  util::Bytes input_;
  BigUint r_;
  BigUint blinded_;
};

/// Finalizes many receivers at once (all over the SAME group): the per-tag
/// scalar inversion 1/r_i — one extended-Euclid each on the single path —
/// collapses into one batch inversion (bignum/batch.hpp). Element i equals
/// receivers[i]->finalize(replies[i]) byte-for-byte. Throws like finalize on
/// a non-element reply; sizes must match.
std::vector<util::Bytes> oprfFinalizeBatch(
    const std::vector<const OprfReceiver*>& receivers,
    const std::vector<BigUint>& replies);

}  // namespace dosn::pkcrypto
