#include "dosn/pkcrypto/blind_rsa.hpp"

#include "dosn/bignum/modmath.hpp"
#include "dosn/util/error.hpp"

namespace dosn::pkcrypto {

using bignum::gcd;
using bignum::invMod;
using bignum::mulMod;
using bignum::powMod;
using bignum::randomUnit;

BlindSignatureRequest::BlindSignatureRequest(const RsaPublicKey& signerKey,
                                             util::BytesView message,
                                             util::Rng& rng)
    : signerKey_(signerKey) {
  const BigUint h = rsaFullDomainHash(signerKey, message);
  // Pick r coprime to n (overwhelmingly likely on the first draw).
  BigUint r = randomUnit(signerKey.n, rng);
  while (gcd(r, signerKey.n) != BigUint(1)) r = randomUnit(signerKey.n, rng);
  rInverse_ = *invMod(r, signerKey.n);
  blinded_ = mulMod(h, powMod(r, signerKey.e, signerKey.n), signerKey.n);
}

BigUint BlindSignatureRequest::unblind(const BigUint& blindSignature) const {
  return mulMod(blindSignature, rInverse_, signerKey_.n);
}

BigUint blindSign(const RsaPrivateKey& key, const BigUint& blinded) {
  if (blinded >= key.pub.n) {
    throw util::CryptoError("blindSign: value out of range");
  }
  return rsaRawPrivate(key, blinded);
}

bool blindSignatureVerify(const RsaPublicKey& key, util::BytesView message,
                          const BigUint& signature) {
  if (signature >= key.n) return false;
  return rsaRawPublic(key, signature) == rsaFullDomainHash(key, message);
}

}  // namespace dosn::pkcrypto
