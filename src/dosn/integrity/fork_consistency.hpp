// Fork-consistency detection (paper §IV-B, Frientegrity): "a malicious
// service provider ... cannot present different clients with divergent views
// ... if the clients who have been equivocated by the service provider
// communicate to each other, they will discover the provider's misbehaviour."
//
// ForkingProvider is the malicious test double (DESIGN.md §3.3): it maintains
// per-fork logs and serves each client the view of its assigned fork, signing
// every root. Clients keep the latest signed root they saw; a pairwise
// cross-check between two clients on divergent forks is guaranteed to expose
// the equivocation (same-version roots differ, or the older root is not a
// prefix of the newer log).
#pragma once

#include <map>
#include <vector>

#include "dosn/integrity/history_tree.hpp"

namespace dosn::integrity {

class ForkingProvider {
 public:
  ForkingProvider(const pkcrypto::DlogGroup& group, util::Rng& rng);

  const pkcrypto::SchnorrPublicKey& publicKey() const {
    return key_.pub;
  }

  /// Registers a client (initially on fork 0 — the honest view).
  void addClient(const std::string& client);

  /// Splits the named clients onto a new fork (copy-on-fork of the log).
  /// Returns the new fork id.
  std::size_t fork(const std::vector<std::string>& clients);

  /// Appends an operation to the fork a client sees.
  void appendAs(const std::string& client, util::Bytes operation,
                util::Rng& rng);

  /// The provider's signed head for the client's fork.
  SignedRoot headFor(const std::string& client) const;

  /// Honest prefix query against the client's fork (what a client asks when
  /// auditing someone else's signed root).
  bool prefixConsistent(const std::string& client, std::uint64_t version,
                        const crypto::Digest& root) const;

  std::size_t forkCount() const { return forks_.size(); }
  std::size_t forkOf(const std::string& client) const;

 private:
  struct Fork {
    HistoryTree log;
    SignedRoot head;
  };

  void resign(Fork& fork, util::Rng& rng);

  const pkcrypto::DlogGroup& group_;
  pkcrypto::SchnorrPrivateKey key_;
  std::vector<Fork> forks_;
  std::map<std::string, std::size_t> clientFork_;
};

/// A client's audit state: the latest signed root it accepted.
class AuditingClient {
 public:
  AuditingClient(const pkcrypto::DlogGroup& group, std::string name,
                 pkcrypto::SchnorrPublicKey providerKey);

  const std::string& name() const { return name_; }

  /// Accepts a provider head (verifies the signature; throws on bad sig).
  void observe(const SignedRoot& head);

  const SignedRoot& lastSeen() const { return lastSeen_; }
  bool hasObserved() const { return observed_; }

  /// Cross-check with a peer's view, consulting the provider for prefix
  /// proofs. Returns true iff equivocation is detected.
  bool crossCheck(const AuditingClient& peer,
                  const ForkingProvider& provider) const;

 private:
  const pkcrypto::DlogGroup& group_;
  std::string name_;
  pkcrypto::SchnorrPublicKey providerKey_;
  SignedRoot lastSeen_;
  bool observed_ = false;
};

}  // namespace dosn::integrity
