// Historical integrity via hash chaining (paper §IV-B, Fethr-style): every
// signed entry embeds the hash of its predecessor, yielding "a provable
// partial ordering" of one publisher's posts. Tampering, reordering, or
// dropping interior entries breaks the chain.
#pragma once

#include <optional>
#include <vector>

#include "dosn/crypto/sha256.hpp"
#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::integrity {

struct ChainEntry {
  std::uint64_t seq = 0;
  crypto::Digest prev{};          // hash of the previous entry (zeros for first)
  util::Bytes payload;            // application bytes (e.g. a serialized Post)
  pkcrypto::SchnorrSignature signature;

  /// The bytes the signature covers (seq || prev || payload).
  util::Bytes signedBytes() const;
  /// This entry's chain hash: H(signedBytes || signature).
  crypto::Digest entryHash() const;

  util::Bytes serialize() const;
  static std::optional<ChainEntry> deserialize(util::BytesView data);
};

/// A single publisher's hash-chained timeline.
class Timeline {
 public:
  Timeline(const pkcrypto::DlogGroup& group, const social::Keyring& keyring);

  /// Signs and appends a new entry.
  const ChainEntry& append(util::BytesView payload, util::Rng& rng);

  const std::vector<ChainEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  /// Hash of the latest entry (zeros when empty) — what other publishers
  /// entangle with.
  crypto::Digest head() const;

 private:
  const pkcrypto::DlogGroup& group_;
  const social::Keyring& keyring_;
  std::vector<ChainEntry> entries_;
};

/// Full-chain verification with the publisher's registered key: signatures,
/// sequence numbers and predecessor hashes must all line up.
bool verifyChain(const pkcrypto::DlogGroup& group,
                 const pkcrypto::SchnorrPublicKey& publisherKey,
                 const std::vector<ChainEntry>& entries);

/// True if `entries[i]` provably precedes `entries[j]` in a verified chain
/// (trivially i < j once verifyChain passes; exposed for readability in the
/// ordering experiments).
bool provablyPrecedes(const std::vector<ChainEntry>& entries, std::size_t i,
                      std::size_t j);

}  // namespace dosn::integrity
