#include "dosn/integrity/history_tree.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::integrity {

util::Bytes SignedRoot::signedBytes() const {
  util::Writer w;
  w.u64(version);
  w.raw(util::BytesView(root));
  return w.take();
}

std::uint64_t HistoryTree::append(util::Bytes operation) {
  leaves_.push_back(std::move(operation));
  cachedTree_.reset();  // invalidate
  cachedVersion_ = ~std::uint64_t{0};
  return leaves_.size();
}

const crypto::MerkleTree& HistoryTree::treeAt(std::uint64_t v) const {
  if (v != cachedVersion_ || !cachedTree_) {
    const std::vector<util::Bytes> prefix(
        leaves_.begin(), leaves_.begin() + static_cast<std::ptrdiff_t>(v));
    cachedTree_.emplace(prefix);
    cachedVersion_ = v;
  }
  return *cachedTree_;
}

crypto::Digest HistoryTree::root() const { return rootAt(leaves_.size()); }

crypto::Digest HistoryTree::rootAt(std::uint64_t v) const {
  if (v > leaves_.size()) throw util::DosnError("HistoryTree: bad version");
  return treeAt(v).root();
}

std::optional<HistoryTree::MembershipProof> HistoryTree::prove(
    std::uint64_t index, std::uint64_t v) const {
  if (v > leaves_.size() || index >= v) return std::nullopt;
  MembershipProof proof;
  proof.operation = leaves_[index];
  proof.path = treeAt(v).prove(index);
  return proof;
}

bool HistoryTree::verifyMembership(const crypto::Digest& root,
                                   const MembershipProof& proof) {
  return crypto::merkleVerify(root, proof.operation, proof.path);
}

bool HistoryTree::consistentWith(std::uint64_t v,
                                 const crypto::Digest& claimedRoot) const {
  if (v > leaves_.size()) return false;
  return rootAt(v) == claimedRoot;
}

SignedRoot signRoot(const pkcrypto::DlogGroup& group,
                    const pkcrypto::SchnorrPrivateKey& providerKey,
                    std::uint64_t version, const crypto::Digest& root,
                    util::Rng& rng) {
  SignedRoot sr;
  sr.version = version;
  sr.root = root;
  sr.signature =
      pkcrypto::schnorrSign(group, providerKey, sr.signedBytes(), rng);
  return sr;
}

bool verifySignedRoot(const pkcrypto::DlogGroup& group,
                      const pkcrypto::SchnorrPublicKey& providerKey,
                      const SignedRoot& signedRoot) {
  return pkcrypto::schnorrVerify(group, providerKey, signedRoot.signedBytes(),
                                 signedRoot.signature);
}

}  // namespace dosn::integrity
