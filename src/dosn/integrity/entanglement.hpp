// Cross-timeline entanglement (paper §IV-B): "the publisher adds the hashes
// of prior events from other participants alongside using the digital
// signature. In this way, a provable order between their messages will be
// established." Entangled entries reference the heads of other publishers'
// timelines; the resulting hash DAG yields provable happened-before facts
// across users.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dosn/integrity/hash_chain.hpp"

namespace dosn::integrity {

struct EntangledEntry {
  std::uint64_t seq = 0;
  crypto::Digest prev{};  // own-chain predecessor
  /// References to other publishers' entries: (publisher, entry hash).
  std::vector<std::pair<social::UserId, crypto::Digest>> references;
  util::Bytes payload;
  pkcrypto::SchnorrSignature signature;

  util::Bytes signedBytes() const;
  crypto::Digest entryHash() const;
};

class EntangledTimeline {
 public:
  EntangledTimeline(const pkcrypto::DlogGroup& group,
                    const social::Keyring& keyring);

  /// Appends an entry referencing the given foreign heads.
  const EntangledEntry& append(
      util::BytesView payload,
      const std::vector<std::pair<social::UserId, crypto::Digest>>& references,
      util::Rng& rng);

  const std::vector<EntangledEntry>& entries() const { return entries_; }
  crypto::Digest head() const;
  const social::UserId& owner() const { return keyring_.user; }

 private:
  const pkcrypto::DlogGroup& group_;
  const social::Keyring& keyring_;
  std::vector<EntangledEntry> entries_;
};

bool verifyEntangledChain(const pkcrypto::DlogGroup& group,
                          const pkcrypto::SchnorrPublicKey& publisherKey,
                          const std::vector<EntangledEntry>& entries);

/// The provable-order oracle over a set of verified timelines: entry A
/// happened-before entry B iff A's hash is reachable from B through prev
/// links and cross references.
class OrderOracle {
 public:
  /// Indexes the timelines (caller has verified them).
  explicit OrderOracle(
      const std::vector<const EntangledTimeline*>& timelines);

  /// True if the entry with hash `a` provably precedes the one with hash `b`.
  bool happenedBefore(const crypto::Digest& a, const crypto::Digest& b) const;

  /// True if neither order is provable (concurrent).
  bool concurrent(const crypto::Digest& a, const crypto::Digest& b) const;

 private:
  // entry hash -> hashes it directly references (prev + cross refs).
  std::map<crypto::Digest, std::vector<crypto::Digest>> predecessors_;
};

}  // namespace dosn::integrity
