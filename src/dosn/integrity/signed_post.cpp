#include "dosn/integrity/signed_post.hpp"

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::integrity {

util::Bytes SignedPost::serialize() const {
  util::Writer w;
  w.bytes(post.serialize());
  w.bytes(signature.serialize());
  return w.take();
}

std::optional<SignedPost> SignedPost::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    SignedPost sp;
    const auto post = Post::deserialize(r.bytes());
    if (!post) return std::nullopt;
    sp.post = *post;
    const auto sig = pkcrypto::SchnorrSignature::deserialize(r.bytes());
    if (!sig) return std::nullopt;
    sp.signature = *sig;
    r.expectEnd();
    return sp;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

SignedPost signPost(const pkcrypto::DlogGroup& group,
                    const social::Keyring& keyring, Post post, util::Rng& rng) {
  if (keyring.user != post.author) {
    throw util::DosnError("signPost: signer is not the author");
  }
  SignedPost sp;
  sp.signature = pkcrypto::schnorrSign(group, keyring.signing,
                                       post.serialize(), rng);
  sp.post = std::move(post);
  return sp;
}

bool verifyPost(const pkcrypto::DlogGroup& group,
                const social::IdentityRegistry& registry,
                const SignedPost& signedPost) {
  const auto identity = registry.lookup(signedPost.post.author);
  if (!identity) return false;
  return pkcrypto::schnorrVerify(group, identity->signingKey,
                                 signedPost.post.serialize(),
                                 signedPost.signature);
}

std::vector<bool> verifyPostsBatch(const pkcrypto::DlogGroup& group,
                                   const social::IdentityRegistry& registry,
                                   const std::vector<SignedPost>& posts) {
  std::vector<bool> out(posts.size(), false);
  // Posts whose claimed author is unregistered reject up front and are left
  // out of the batch; the rest verify in one call, grouped by key inside.
  std::vector<pkcrypto::SchnorrBatchItem> items;
  std::vector<std::size_t> mapping;
  items.reserve(posts.size());
  mapping.reserve(posts.size());
  for (std::size_t i = 0; i < posts.size(); ++i) {
    const auto identity = registry.lookup(posts[i].post.author);
    if (!identity) continue;
    items.push_back(pkcrypto::SchnorrBatchItem{identity->signingKey,
                                               posts[i].post.serialize(),
                                               posts[i].signature});
    mapping.push_back(i);
  }
  const std::vector<bool> results = pkcrypto::schnorrVerifyBatch(group, items);
  for (std::size_t k = 0; k < mapping.size(); ++k) out[mapping[k]] = results[k];
  return out;
}

}  // namespace dosn::integrity
