#include "dosn/integrity/relation.hpp"

#include "dosn/crypto/aead.hpp"
#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::integrity {

RelationPost createRelationPost(const pkcrypto::DlogGroup& group,
                                const social::Keyring& author,
                                social::Post post,
                                util::BytesView commenterGroupKey,
                                util::Rng& rng) {
  RelationPost rp;
  const pkcrypto::SchnorrPrivateKey commentKey =
      pkcrypto::schnorrGenerate(group, rng);
  rp.commentVerifyKey = commentKey.pub;
  rp.sealedSigningKey = crypto::sealWithNonce(
      commenterGroupKey, commentKey.x.toBytes(), rng);
  rp.base = signPost(group, author, std::move(post), rng);
  return rp;
}

std::optional<pkcrypto::SchnorrPrivateKey> extractCommentKey(
    const pkcrypto::DlogGroup& group, const RelationPost& post,
    util::BytesView commenterGroupKey) {
  const auto scalarBytes =
      crypto::openWithNonce(commenterGroupKey, post.sealedSigningKey);
  if (!scalarBytes) return std::nullopt;
  const bignum::BigUint x = bignum::BigUint::fromBytes(*scalarBytes);
  pkcrypto::SchnorrPrivateKey key{pkcrypto::SchnorrPublicKey{group.exp(x)}, x};
  // The unsealed key must match the post's embedded verification key.
  if (key.pub.y != post.commentVerifyKey.y) return std::nullopt;
  return key;
}

namespace {

util::Bytes commentContext(const RelationPost& post, const Comment& comment) {
  util::Writer w;
  // Bind to the specific post instance (its signature digest), not just the
  // id, so a comment can't be replayed under a forged same-id post.
  w.bytes(post.base.signature.serialize());
  w.bytes(comment.serialize());
  return w.take();
}

}  // namespace

SignedComment signComment(const pkcrypto::DlogGroup& group,
                          const RelationPost& post,
                          const pkcrypto::SchnorrPrivateKey& commentKey,
                          Comment comment, util::Rng& rng) {
  if (comment.post != post.base.post.id) {
    throw util::DosnError("signComment: comment names a different post");
  }
  SignedComment sc;
  sc.signature = pkcrypto::schnorrSign(group, commentKey,
                                       commentContext(post, comment), rng);
  sc.comment = std::move(comment);
  return sc;
}

bool verifyComment(const pkcrypto::DlogGroup& group, const RelationPost& post,
                   const SignedComment& comment) {
  if (comment.comment.post != post.base.post.id) return false;
  return pkcrypto::schnorrVerify(group, post.commentVerifyKey,
                                 commentContext(post, comment.comment),
                                 comment.signature);
}

}  // namespace dosn::integrity
