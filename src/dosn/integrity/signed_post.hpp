// Integrity of the data owner and the data content (paper §IV-A): hash-then-
// sign over the post's canonical encoding. Verification keys come from the
// out-of-band IdentityRegistry (§IV-A's key-distribution assumption).
#pragma once

#include <optional>
#include <vector>

#include "dosn/pkcrypto/schnorr.hpp"
#include "dosn/social/content.hpp"
#include "dosn/social/identity.hpp"

namespace dosn::integrity {

using social::Post;

struct SignedPost {
  Post post;
  pkcrypto::SchnorrSignature signature;

  util::Bytes serialize() const;
  static std::optional<SignedPost> deserialize(util::BytesView data);
};

/// Signs a post with its author's key. Throws if keyring.user != post.author
/// (you cannot honestly sign someone else's post).
SignedPost signPost(const pkcrypto::DlogGroup& group,
                    const social::Keyring& keyring, Post post, util::Rng& rng);

/// Verifies owner + content integrity: the signature must verify under the
/// registered key of the post's claimed author.
bool verifyPost(const pkcrypto::DlogGroup& group,
                const social::IdentityRegistry& registry,
                const SignedPost& signedPost);

/// Verifies a fetched page of posts in one schnorrVerifyBatch call;
/// result[i] == verifyPost(posts[i]) for every i. Feed ingestion
/// (app/microblog) calls this so a page from one author pays the author-key
/// subgroup check once rather than per post.
std::vector<bool> verifyPostsBatch(const pkcrypto::DlogGroup& group,
                                   const social::IdentityRegistry& registry,
                                   const std::vector<SignedPost>& posts);

}  // namespace dosn::integrity
