// Integrity of data relations (paper §IV-C, Cachet-style): each post embeds a
// fresh comment-signing key pair. The verification key is public in the post;
// the signing key is sealed so only authorized commenters can extract it.
// A comment verifies against its post iff it was signed with that post's key
// and names the post's id — binding comment to post and proving commenter
// privilege.
#pragma once

#include <optional>

#include "dosn/integrity/signed_post.hpp"
#include "dosn/social/content.hpp"

namespace dosn::integrity {

using social::Comment;

/// A post carrying its comment-key material.
struct RelationPost {
  SignedPost base;
  pkcrypto::SchnorrPublicKey commentVerifyKey;
  /// The comment-signing scalar, AEAD-sealed under the commenter group key.
  util::Bytes sealedSigningKey;
};

struct SignedComment {
  Comment comment;
  pkcrypto::SchnorrSignature signature;
};

/// Creates a post with an embedded per-post comment key, sealed to holders of
/// `commenterGroupKey` (32 bytes — e.g. a SymmetricAcl group key).
RelationPost createRelationPost(const pkcrypto::DlogGroup& group,
                                const social::Keyring& author,
                                social::Post post,
                                util::BytesView commenterGroupKey,
                                util::Rng& rng);

/// Unseals the post's comment-signing key (authorized commenters only).
std::optional<pkcrypto::SchnorrPrivateKey> extractCommentKey(
    const pkcrypto::DlogGroup& group, const RelationPost& post,
    util::BytesView commenterGroupKey);

/// Signs a comment for the post. Throws if comment.post != post id.
SignedComment signComment(const pkcrypto::DlogGroup& group,
                          const RelationPost& post,
                          const pkcrypto::SchnorrPrivateKey& commentKey,
                          Comment comment, util::Rng& rng);

/// Verifies the comment-to-post binding and the commenter's privilege.
bool verifyComment(const pkcrypto::DlogGroup& group, const RelationPost& post,
                   const SignedComment& comment);

}  // namespace dosn::integrity
