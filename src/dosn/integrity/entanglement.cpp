#include "dosn/integrity/entanglement.hpp"

#include <set>

#include "dosn/util/codec.hpp"

namespace dosn::integrity {

util::Bytes EntangledEntry::signedBytes() const {
  util::Writer w;
  w.u64(seq);
  w.raw(util::BytesView(prev));
  w.u32(static_cast<std::uint32_t>(references.size()));
  for (const auto& [user, hash] : references) {
    w.str(user);
    w.raw(util::BytesView(hash));
  }
  w.bytes(payload);
  return w.take();
}

crypto::Digest EntangledEntry::entryHash() const {
  util::Writer w;
  w.raw(signedBytes());
  w.raw(signature.serialize());
  return crypto::sha256(w.buffer());
}

EntangledTimeline::EntangledTimeline(const pkcrypto::DlogGroup& group,
                                     const social::Keyring& keyring)
    : group_(group), keyring_(keyring) {}

const EntangledEntry& EntangledTimeline::append(
    util::BytesView payload,
    const std::vector<std::pair<social::UserId, crypto::Digest>>& references,
    util::Rng& rng) {
  EntangledEntry entry;
  entry.seq = entries_.size();
  entry.prev = head();
  entry.references = references;
  entry.payload = util::Bytes(payload.begin(), payload.end());
  entry.signature =
      pkcrypto::schnorrSign(group_, keyring_.signing, entry.signedBytes(), rng);
  entries_.push_back(std::move(entry));
  return entries_.back();
}

crypto::Digest EntangledTimeline::head() const {
  if (entries_.empty()) return crypto::Digest{};
  return entries_.back().entryHash();
}

bool verifyEntangledChain(const pkcrypto::DlogGroup& group,
                          const pkcrypto::SchnorrPublicKey& publisherKey,
                          const std::vector<EntangledEntry>& entries) {
  crypto::Digest expectedPrev{};
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const EntangledEntry& entry = entries[i];
    if (entry.seq != i) return false;
    if (entry.prev != expectedPrev) return false;
    if (!pkcrypto::schnorrVerify(group, publisherKey, entry.signedBytes(),
                                 entry.signature)) {
      return false;
    }
    expectedPrev = entry.entryHash();
  }
  return true;
}

OrderOracle::OrderOracle(
    const std::vector<const EntangledTimeline*>& timelines) {
  const crypto::Digest zero{};
  for (const EntangledTimeline* timeline : timelines) {
    for (const EntangledEntry& entry : timeline->entries()) {
      auto& preds = predecessors_[entry.entryHash()];
      if (entry.prev != zero) preds.push_back(entry.prev);
      for (const auto& [user, hash] : entry.references) {
        if (hash != zero) preds.push_back(hash);
      }
    }
  }
}

bool OrderOracle::happenedBefore(const crypto::Digest& a,
                                 const crypto::Digest& b) const {
  if (a == b) return false;
  // BFS backwards from b looking for a.
  std::set<crypto::Digest> visited;
  std::vector<crypto::Digest> frontier{b};
  while (!frontier.empty()) {
    const crypto::Digest current = frontier.back();
    frontier.pop_back();
    if (!visited.insert(current).second) continue;
    const auto it = predecessors_.find(current);
    if (it == predecessors_.end()) continue;
    for (const crypto::Digest& pred : it->second) {
      if (pred == a) return true;
      frontier.push_back(pred);
    }
  }
  return false;
}

bool OrderOracle::concurrent(const crypto::Digest& a,
                             const crypto::Digest& b) const {
  return !happenedBefore(a, b) && !happenedBefore(b, a);
}

}  // namespace dosn::integrity
