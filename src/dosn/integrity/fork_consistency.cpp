#include "dosn/integrity/fork_consistency.hpp"

#include "dosn/util/error.hpp"

namespace dosn::integrity {

ForkingProvider::ForkingProvider(const pkcrypto::DlogGroup& group,
                                 util::Rng& rng)
    : group_(group), key_(pkcrypto::schnorrGenerate(group, rng)) {
  Fork fork;
  resign(fork, rng);
  forks_.push_back(std::move(fork));
}

void ForkingProvider::resign(Fork& fork, util::Rng& rng) {
  fork.head =
      signRoot(group_, key_, fork.log.version(), fork.log.root(), rng);
}

void ForkingProvider::addClient(const std::string& client) {
  clientFork_[client] = 0;
}

std::size_t ForkingProvider::fork(const std::vector<std::string>& clients) {
  Fork copy = forks_[0];  // equivocation starts from the honest view
  forks_.push_back(std::move(copy));
  const std::size_t id = forks_.size() - 1;
  for (const std::string& client : clients) {
    if (!clientFork_.count(client)) {
      throw util::DosnError("ForkingProvider: unknown client " + client);
    }
    clientFork_[client] = id;
  }
  return id;
}

void ForkingProvider::appendAs(const std::string& client, util::Bytes operation,
                               util::Rng& rng) {
  const auto it = clientFork_.find(client);
  if (it == clientFork_.end()) {
    throw util::DosnError("ForkingProvider: unknown client " + client);
  }
  Fork& fork = forks_[it->second];
  fork.log.append(std::move(operation));
  resign(fork, rng);
}

SignedRoot ForkingProvider::headFor(const std::string& client) const {
  const auto it = clientFork_.find(client);
  if (it == clientFork_.end()) {
    throw util::DosnError("ForkingProvider: unknown client " + client);
  }
  return forks_[it->second].head;
}

bool ForkingProvider::prefixConsistent(const std::string& client,
                                       std::uint64_t version,
                                       const crypto::Digest& root) const {
  const auto it = clientFork_.find(client);
  if (it == clientFork_.end()) {
    throw util::DosnError("ForkingProvider: unknown client " + client);
  }
  return forks_[it->second].log.consistentWith(version, root);
}

std::size_t ForkingProvider::forkOf(const std::string& client) const {
  const auto it = clientFork_.find(client);
  if (it == clientFork_.end()) {
    throw util::DosnError("ForkingProvider: unknown client " + client);
  }
  return it->second;
}

AuditingClient::AuditingClient(const pkcrypto::DlogGroup& group,
                               std::string name,
                               pkcrypto::SchnorrPublicKey providerKey)
    : group_(group), name_(std::move(name)), providerKey_(std::move(providerKey)) {}

void AuditingClient::observe(const SignedRoot& head) {
  if (!verifySignedRoot(group_, providerKey_, head)) {
    throw util::DosnError("AuditingClient: invalid provider signature");
  }
  // Clients keep their highest-version head (a provider serving an older
  // head to roll the client back is a separate, also detectable, attack).
  if (!observed_ || head.version >= lastSeen_.version) {
    lastSeen_ = head;
    observed_ = true;
  }
}

bool AuditingClient::crossCheck(const AuditingClient& peer,
                                const ForkingProvider& provider) const {
  if (!observed_ || !peer.observed_) return false;
  const SignedRoot& mine = lastSeen_;
  const SignedRoot& theirs = peer.lastSeen_;
  // Same version, different roots: immediate equivocation proof.
  if (mine.version == theirs.version) return mine.root != theirs.root;
  // Otherwise the older head must be a prefix of the newer client's log;
  // audit through the newer client's fork view of the provider.
  const SignedRoot& older = mine.version < theirs.version ? mine : theirs;
  const AuditingClient& newer = mine.version < theirs.version ? peer : *this;
  return !provider.prefixConsistent(newer.name_, older.version, older.root);
}

}  // namespace dosn::integrity
