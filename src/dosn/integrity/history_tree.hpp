// Object history tree (paper §IV-B, Frientegrity): an append-only Merkle
// structure over an object's operation log. Every version has a root digest;
// the (possibly malicious) provider signs roots, clients verify membership
// proofs against them, and divergent views are detectable by comparing signed
// roots (see fork_consistency.hpp).
#pragma once

#include <optional>
#include <vector>

#include "dosn/crypto/merkle.hpp"
#include "dosn/pkcrypto/schnorr.hpp"

namespace dosn::integrity {

/// A provider-signed (version, root) commitment — the paper's "service
/// provider also digitally signs the root of object history tree".
struct SignedRoot {
  std::uint64_t version = 0;  // number of operations committed
  crypto::Digest root{};
  pkcrypto::SchnorrSignature signature;

  util::Bytes signedBytes() const;
};

class HistoryTree {
 public:
  /// Appends an operation; returns the new version number.
  std::uint64_t append(util::Bytes operation);

  std::uint64_t version() const { return leaves_.size(); }

  /// Root digest of the current version.
  crypto::Digest root() const;
  /// Root digest of a historical version v (first v operations).
  crypto::Digest rootAt(std::uint64_t v) const;

  /// Membership proof that operation `index` is in version `v`.
  struct MembershipProof {
    util::Bytes operation;
    crypto::MerkleProof path;
  };
  std::optional<MembershipProof> prove(std::uint64_t index,
                                       std::uint64_t v) const;

  static bool verifyMembership(const crypto::Digest& root,
                               const MembershipProof& proof);

  /// Prefix-consistency check: would an honest log with this tree's first
  /// `v` operations produce `claimedRoot`? (Clients use this to cross-check
  /// a peer's signed root against their own view of the log.)
  bool consistentWith(std::uint64_t v, const crypto::Digest& claimedRoot) const;

  const std::vector<util::Bytes>& operations() const { return leaves_; }

 private:
  /// Merkle tree over the first v leaves; the current version is cached.
  const crypto::MerkleTree& treeAt(std::uint64_t v) const;

  std::vector<util::Bytes> leaves_;
  // Cache for the most-recently requested version (usually the head).
  mutable std::uint64_t cachedVersion_ = ~std::uint64_t{0};
  mutable std::optional<crypto::MerkleTree> cachedTree_;
};

/// Provider-side helper: sign / verify root commitments.
SignedRoot signRoot(const pkcrypto::DlogGroup& group,
                    const pkcrypto::SchnorrPrivateKey& providerKey,
                    std::uint64_t version, const crypto::Digest& root,
                    util::Rng& rng);
bool verifySignedRoot(const pkcrypto::DlogGroup& group,
                      const pkcrypto::SchnorrPublicKey& providerKey,
                      const SignedRoot& signedRoot);

}  // namespace dosn::integrity
