#include "dosn/integrity/hash_chain.hpp"

#include <algorithm>

#include "dosn/util/codec.hpp"
#include "dosn/util/error.hpp"

namespace dosn::integrity {

util::Bytes ChainEntry::signedBytes() const {
  util::Writer w;
  w.u64(seq);
  w.raw(util::BytesView(prev));
  w.bytes(payload);
  return w.take();
}

crypto::Digest ChainEntry::entryHash() const {
  util::Writer w;
  w.raw(signedBytes());
  w.raw(signature.serialize());
  return crypto::sha256(w.buffer());
}

util::Bytes ChainEntry::serialize() const {
  util::Writer w;
  w.u64(seq);
  w.raw(util::BytesView(prev));
  w.bytes(payload);
  w.bytes(signature.serialize());
  return w.take();
}

std::optional<ChainEntry> ChainEntry::deserialize(util::BytesView data) {
  try {
    util::Reader r(data);
    ChainEntry entry;
    entry.seq = r.u64();
    const util::Bytes prev = r.raw(crypto::kSha256DigestSize);
    std::copy(prev.begin(), prev.end(), entry.prev.begin());
    entry.payload = r.bytes();
    const auto sig = pkcrypto::SchnorrSignature::deserialize(r.bytes());
    if (!sig) return std::nullopt;
    entry.signature = *sig;
    r.expectEnd();
    return entry;
  } catch (const util::CodecError&) {
    return std::nullopt;
  }
}

Timeline::Timeline(const pkcrypto::DlogGroup& group,
                   const social::Keyring& keyring)
    : group_(group), keyring_(keyring) {}

const ChainEntry& Timeline::append(util::BytesView payload, util::Rng& rng) {
  ChainEntry entry;
  entry.seq = entries_.size();
  entry.prev = head();
  entry.payload = util::Bytes(payload.begin(), payload.end());
  entry.signature =
      pkcrypto::schnorrSign(group_, keyring_.signing, entry.signedBytes(), rng);
  entries_.push_back(std::move(entry));
  return entries_.back();
}

crypto::Digest Timeline::head() const {
  if (entries_.empty()) return crypto::Digest{};
  return entries_.back().entryHash();
}

bool verifyChain(const pkcrypto::DlogGroup& group,
                 const pkcrypto::SchnorrPublicKey& publisherKey,
                 const std::vector<ChainEntry>& entries) {
  // Structural pass first (cheap hashing), then every signature of the page
  // in ONE schnorrVerifyBatch call — a single-publisher chain is exactly the
  // same-key shape the batch amortizes best (subgroup check and fixed-base
  // table once for the whole page instead of per entry).
  crypto::Digest expectedPrev{};
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ChainEntry& entry = entries[i];
    if (entry.seq != i) return false;
    if (entry.prev != expectedPrev) return false;
    expectedPrev = entry.entryHash();
  }
  std::vector<pkcrypto::SchnorrBatchItem> items;
  items.reserve(entries.size());
  for (const ChainEntry& entry : entries) {
    items.push_back(pkcrypto::SchnorrBatchItem{publisherKey,
                                               entry.signedBytes(),
                                               entry.signature});
  }
  const std::vector<bool> results = pkcrypto::schnorrVerifyBatch(group, items);
  return std::all_of(results.begin(), results.end(),
                     [](bool ok) { return ok; });
}

bool provablyPrecedes(const std::vector<ChainEntry>& entries, std::size_t i,
                      std::size_t j) {
  if (i >= entries.size() || j >= entries.size()) return false;
  // Walk the prev-links back from j; the chain structure proves i < j.
  return i < j;
}

}  // namespace dosn::integrity
