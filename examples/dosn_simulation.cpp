// A full P2P DOSN session on the discrete-event simulator: a Kademlia DHT
// control overlay, churning nodes, replicated encrypted profiles, and an
// availability report — the paper's §I/§II architecture in action.
//
//   ./dosn_simulation
#include <cstdio>
#include <memory>

#include "dosn/crypto/aead.hpp"
#include "dosn/overlay/kademlia.hpp"
#include "dosn/overlay/replication.hpp"
#include "dosn/sim/churn.hpp"

int main() {
  using namespace dosn;
  using namespace dosn::overlay;
  using sim::kMillisecond;
  using sim::kSecond;

  util::Rng rng(31337);
  sim::Simulator simulator;
  sim::Network network(
      simulator, sim::LatencyModel{25 * kMillisecond, 15 * kMillisecond, 0.01},
      rng);

  // 60 peers join a Kademlia DHT through one bootstrap node.
  const std::size_t kPeers = 60;
  std::vector<std::unique_ptr<KademliaNode>> peers;
  for (std::size_t i = 0; i < kPeers; ++i) {
    peers.push_back(
        std::make_unique<KademliaNode>(network, OverlayId::random(rng)));
  }
  const Contact seed{peers[0]->id(), peers[0]->addr()};
  for (std::size_t i = 1; i < kPeers; ++i) {
    peers[i]->bootstrap(seed);
    simulator.run();
  }
  std::printf("DHT bootstrapped: %zu peers, node 1 routing table holds %zu contacts\n",
              kPeers, peers[1]->routingTable().size());

  // Each of 20 users stores an ENCRYPTED profile in the DHT (replicas see
  // only ciphertext — they are "small-scale service providers" without the
  // plaintext view).
  std::vector<OverlayId> profileKeys;
  std::vector<util::Bytes> profileAeadKeys;
  for (int u = 0; u < 20; ++u) {
    const std::string name = "user" + std::to_string(u);
    const util::Bytes key = rng.bytes(32);
    const util::Bytes ciphertext = crypto::sealWithNonce(
        key, util::toBytes("profile of " + name), rng);
    const OverlayId dhtKey = OverlayId::hash("profile:" + name);
    peers[static_cast<std::size_t>(u)]->store(dhtKey, ciphertext, {});
    profileKeys.push_back(dhtKey);
    profileAeadKeys.push_back(key);
    simulator.run();
  }
  std::printf("stored 20 encrypted profiles (replicated on the k closest peers)\n");
  std::printf("network traffic so far: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(network.messagesSent()),
              static_cast<unsigned long long>(network.bytesSent()));

  // Churn begins: ~55%% of peers online at any time.
  std::vector<sim::NodeAddr> addrs;
  for (const auto& p : peers) addrs.push_back(p->addr());
  sim::ChurnConfig churnConfig;
  churnConfig.meanOnlineSeconds = 600;
  churnConfig.meanOfflineSeconds = 480;
  churnConfig.initialOnlineFraction = 0.55;
  sim::ChurnProcess churn(network, churnConfig, addrs);
  std::printf("\nchurn enabled (expected availability %.0f%%)\n",
              100.0 * sim::expectedAvailability(churnConfig));

  // Over an hour of virtual time, an online peer repeatedly fetches a random
  // profile; we count successes.
  std::size_t attempts = 0;
  std::size_t successes = 0;
  for (int round = 0; round < 60; ++round) {
    simulator.runUntil(simulator.now() + 60 * kSecond);
    // Pick an online reader and a random profile.
    std::size_t reader = rng.uniform(kPeers);
    if (!network.isOnline(peers[reader]->addr())) continue;
    const std::size_t target = rng.uniform(profileKeys.size());
    ++attempts;
    peers[reader]->findValue(profileKeys[target], [&, target](LookupResult r) {
      if (!r.value) return;
      const auto plain = crypto::openWithNonce(profileAeadKeys[target], *r.value);
      if (plain) ++successes;
    });
    simulator.runUntil(simulator.now() + 10 * kSecond);
  }
  churn.stop();

  std::printf("profile fetches under churn: %zu/%zu succeeded (%.0f%%)\n",
              successes, attempts,
              attempts ? 100.0 * static_cast<double>(successes) /
                             static_cast<double>(attempts)
                       : 0.0);
  std::printf("total traffic: %llu messages (%llu delivered), %llu bytes\n",
              static_cast<unsigned long long>(network.messagesSent()),
              static_cast<unsigned long long>(network.messagesDelivered()),
              static_cast<unsigned long long>(network.bytesSent()));
  std::printf("virtual time elapsed: %.0f s\n",
              static_cast<double>(simulator.now()) / kSecond);
  return 0;
}
