// Secure friend-to-friend messaging and KP-ABE topic feeds: the §IV-A
// key-establishment story and the key-policy flavor of §III-D, end to end.
//
//   ./secure_messaging
#include <cstdio>

#include "dosn/privacy/direct_message.hpp"
#include "dosn/privacy/pad_membership.hpp"
#include "dosn/search/topic_subscription.hpp"

int main() {
  using namespace dosn;

  util::Rng rng(77);
  const pkcrypto::DlogGroup& group = pkcrypto::DlogGroup::cached(512);

  // Out-of-band identity exchange (paper sec IV-A).
  social::IdentityRegistry registry;
  const social::Keyring bob = social::createKeyring(group, "bob", rng);
  const social::Keyring alice = social::createKeyring(group, "alice", rng);
  registry.registerIdentity(social::publicIdentity(bob));
  registry.registerIdentity(social::publicIdentity(alice));

  std::printf("== 1. Pairwise direct messages over untrusted relays ==\n");
  privacy::MessageChannel bobChan(group, bob, registry);
  privacy::MessageChannel aliceChan(group, alice, registry);

  const privacy::SealedMessage invitation =
      bobChan.seal("alice", util::toBytes("Party at my place on Friday!"), rng);
  std::printf("relay sees: from=%s to=%s counter=%llu, %zu ciphertext bytes\n",
              invitation.from.c_str(), invitation.to.c_str(),
              static_cast<unsigned long long>(invitation.counter),
              invitation.box.size());
  const auto opened = aliceChan.open(invitation);
  std::printf("alice reads: %s\n",
              opened ? util::toString(*opened).c_str() : "(failed)");
  std::printf("relay replays the message: %s\n",
              aliceChan.open(invitation) ? "accepted (BUG!)"
                                         : "rejected (replay counter)");
  privacy::SealedMessage tampered = invitation;
  tampered.box[4] ^= 1;
  std::printf("relay tampers a copy:      %s\n\n",
              aliceChan.open(tampered) ? "accepted (BUG!)"
                                       : "rejected (AEAD)");

  std::printf("== 2. Owner-signed PAD membership (Frientegrity ACLs) ==\n");
  privacy::PadAcl acl(group, bob);
  acl.grant("alice", "rw", rng);
  acl.grant("carol", "r", rng);
  const auto attestation = acl.proveMembership("alice");
  const auto permission =
      privacy::verifyMembership(group, bob.signing.pub, "alice", *attestation);
  std::printf("provider-served proof for alice verifies: %s (permission=%s)\n",
              permission ? "yes" : "NO", permission ? permission->c_str() : "-");
  acl.revoke("alice", rng);
  std::printf("after revocation, provider can prove alice: %s (version %llu)\n\n",
              acl.proveMembership("alice") ? "yes (BUG!)" : "no",
              static_cast<unsigned long long>(acl.version()));

  std::printf("== 3. KP-ABE topic subscriptions ==\n");
  abe::KpAbeAuthority authority(group, rng);
  search::TopicPublisher publisher(authority);
  search::TopicSubscriber sportsFan(
      group, authority.keyGen(*policy::Policy::parse("sports AND istanbul")));

  const std::vector<search::TopicPost> feed = {
      publisher.publish({"sports", "istanbul"},
                        social::Post{"pub", 1, 0, "derby tonight at 8"}, rng),
      publisher.publish({"sports", "paris"},
                        social::Post{"pub", 2, 0, "ligue 1 recap"}, rng),
      publisher.publish({"food", "istanbul"},
                        social::Post{"pub", 3, 0, "best simit spots"}, rng),
  };
  std::printf("feed store sees topic labels only: ");
  for (const auto& p : feed) std::printf("[%zu topics] ", p.topics.size());
  std::printf("\nsubscriber policy: sports AND istanbul\n");
  for (const social::Post& post : sportsFan.filterFeed(feed)) {
    std::printf("  matched + decrypted: %s\n", post.text.c_str());
  }
  std::printf("(the other posts stay sealed for this key)\n");
  return 0;
}
