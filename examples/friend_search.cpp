// Secure social search (paper §V) on a synthetic small-world network:
//  - searcher privacy through a matryoshka of trusted friends,
//  - owner privacy through resource handlers gated by ZKP pseudonyms,
//  - trusted results through chain-trust ranking.
//
//   ./friend_search
#include <cstdio>

#include "dosn/search/friend_rings.hpp"
#include "dosn/search/resource_handler.hpp"
#include "dosn/search/trust_rank.hpp"
#include "dosn/search/zkp_access.hpp"
#include "dosn/social/graph_gen.hpp"

int main() {
  using namespace dosn;
  using namespace dosn::search;

  util::Rng rng(1234);
  const pkcrypto::DlogGroup& group = pkcrypto::DlogGroup::cached(512);

  // A 120-user small-world social graph with trust-weighted friendships.
  social::SocialGraph graph = social::wattsStrogatz(120, 4, 0.15, rng);
  std::printf("social graph: %zu users, %zu friendships\n\n",
              graph.userCount(), graph.edgeCount());

  // --- Trusted search result (sec V-D) ---
  // u0 searches for candidates; results rank by chain trust x popularity.
  const std::vector<social::UserId> candidates = {"u5", "u30", "u60", "u90"};
  std::printf("trust-ranked search from u0 (alpha=0.7):\n");
  for (const RankedResult& r :
       trustRankedSearch(graph, "u0", candidates, /*maxHops=*/6, 0.7)) {
    std::printf("  %-4s trust=%.3f popularity=%.2f score=%.3f\n",
                r.user.c_str(), r.trust, r.popularity, r.score);
  }

  // --- Privacy of searcher (sec V-B): matryoshka rings ---
  Matryoshka ring(graph, /*core=*/"u0", /*depth=*/3, /*paths=*/2, rng);
  std::printf("\nmatryoshka for u0: %zu path(s)\n", ring.pathCount());
  for (std::size_t p = 0; p < ring.pathCount(); ++p) {
    std::printf("  path %zu entry point: %s (anonymity set: %zu users)\n", p,
                ring.entryPoint(p).c_str(), ring.anonymitySetSize(graph, p));
  }
  std::vector<social::UserId> trace;
  const std::string reply = ring.route(
      0, "who-are-you?",
      [](const std::string&) { return std::string("pseudonymous-profile"); },
      &trace);
  std::printf("  request routed through %zu relays -> reply: %s\n",
              trace.size(), reply.c_str());

  // --- Privacy of the searched data owner (sec V-C) ---
  ResourceHandlerRegistry handlers(group);
  handlers.registerResource("u7/birthday", "u7",
                            util::toBytes("26 October 1990"));
  std::printf("\nsearchable handlers (no content leaks):\n");
  for (const std::string& handle : handlers.listHandles()) {
    std::printf("  %s (owner: %s)\n", handle.c_str(),
                handlers.ownerOf(handle)->c_str());
  }

  // u0 asks for the content behind the handler with a pseudonym + ZKP.
  const Pseudonym searcher = createPseudonym(group, rng);
  std::printf("searcher pseudonym: %s (unlinkable to u0)\n",
              searcher.handle.c_str());
  const auto before = handlers.request(
      "u7/birthday", searcher.handle,
      proveAccess(group, searcher, "u7/birthday", rng));
  std::printf("  before owner grant: %s\n",
              before ? "released (BUG!)" : "denied");
  handlers.grant("u7/birthday", "u7", searcher.handle, searcher.key.pub);
  const auto after = handlers.request(
      "u7/birthday", searcher.handle,
      proveAccess(group, searcher, "u7/birthday", rng));
  std::printf("  after owner grant:  %s\n",
              after ? util::toString(*after).c_str() : "denied (BUG!)");
  return 0;
}
