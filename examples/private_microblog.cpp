// Hummingbird-style private microblogging (paper §III-F / §V-A): the server
// matches encrypted tweets to subscriptions without learning contents or
// hashtags; subscribers obtain stream keys via OPRF or blind signatures
// without revealing their interests to the publisher.
//
//   ./private_microblog
#include <cstdio>

#include "dosn/search/hummingbird.hpp"

int main() {
  using namespace dosn;
  using namespace dosn::search;

  util::Rng rng(99);
  const pkcrypto::DlogGroup& group = pkcrypto::DlogGroup::cached(512);

  HummingbirdPublisher publisher(group, /*rsaBits=*/1024, rng);
  HummingbirdSubscriber subscriber(group);
  HummingbirdServer server;

  // The publisher tweets under hashtag-derived keys; the server stores only
  // opaque (index, ciphertext) pairs.
  server.accept(publisher.publish("#privacy", "DOSNs shift trust to replicas", rng));
  server.accept(publisher.publish("#privacy", "read the ICDCS'15 survey", rng));
  server.accept(publisher.publish("#cats", "cat pic thread", rng));
  std::printf("server stores %zu tweets across %zu opaque streams\n",
              server.tweetCount(), server.streamCount());

  // --- OPRF subscription: the publisher never learns WHICH tag ---
  const auto oprfReq = subscriber.beginOprf("#privacy", rng);
  const Subscription privacySub =
      subscriber.finishOprf(oprfReq, publisher.oprfEvaluate(oprfReq.blinded()));
  std::printf("\n[OPRF] subscriber pulls the '#privacy' stream:\n");
  for (const EncryptedTweet& tweet : server.match(privacySub.index)) {
    const auto text = HummingbirdSubscriber::decrypt(privacySub, tweet);
    std::printf("  decrypted: %s\n", text ? text->c_str() : "(failed)");
  }

  // A guess at the wrong tag matches nothing.
  const auto wrongReq = subscriber.beginOprf("#politics", rng);
  const Subscription wrongSub = subscriber.finishOprf(
      wrongReq, publisher.oprfEvaluate(wrongReq.blinded()));
  std::printf("  '#politics' guess matches %zu tweets\n",
              server.match(wrongSub.index).size());

  // --- Blind-signature subscription (sec V-A) ---
  server.accept(publisher.publish("#jazz", "late-night live set",
                                  rng, KeyPath::kBlindSig));
  auto blindReq = subscriber.beginBlind(publisher.blindPublicKey(), "#jazz", rng);
  const auto blindSig = publisher.blindSign(blindReq.blinded());
  const auto jazzSub =
      subscriber.finishBlind(publisher.blindPublicKey(), blindReq, blindSig);
  std::printf("\n[blind-sig] '#jazz' subscription %s\n",
              jazzSub ? "established (signature verified)" : "FAILED");
  if (jazzSub) {
    for (const EncryptedTweet& tweet : server.match(jazzSub->index)) {
      const auto text = HummingbirdSubscriber::decrypt(*jazzSub, tweet);
      std::printf("  decrypted: %s\n", text ? text->c_str() : "(failed)");
    }
  }

  // What the curious server actually sees.
  std::printf("\nserver's view of stream indexes (opaque, tag-unlinkable):\n");
  std::printf("  #privacy stream index: %s...\n",
              util::toHex(util::BytesView(privacySub.index.data(), 8)).c_str());
  if (jazzSub) {
    std::printf("  #jazz    stream index: %s...\n",
                util::toHex(util::BytesView(jazzSub->index.data(), 8)).c_str());
  }
  return 0;
}
