// The paper's §IV running scenario, executed end to end: Bob invites Alice to
// a party; the four integrity aspects — owner, content, history, relations —
// are each demonstrated with a working attack that the mechanisms reject.
//
//   ./party_invitation
#include <cstdio>

#include "dosn/integrity/entanglement.hpp"
#include "dosn/integrity/hash_chain.hpp"
#include "dosn/integrity/relation.hpp"
#include "dosn/integrity/signed_post.hpp"

int main() {
  using namespace dosn;
  using integrity::SignedPost;

  util::Rng rng(7);
  const pkcrypto::DlogGroup& group = pkcrypto::DlogGroup::cached(512);

  social::IdentityRegistry registry;
  const social::Keyring bob = social::createKeyring(group, "bob", rng);
  const social::Keyring alice = social::createKeyring(group, "alice", rng);
  const social::Keyring mallory = social::createKeyring(group, "mallory", rng);
  registry.registerIdentity(social::publicIdentity(bob));
  registry.registerIdentity(social::publicIdentity(alice));
  registry.registerIdentity(social::publicIdentity(mallory));

  std::printf("== 1. Integrity of the data owner & content (sec IV-A) ==\n");
  social::Post invitation{"bob", 1, 100,
                          "Come to my party held at my home on Friday"};
  const SignedPost signedInvitation =
      integrity::signPost(group, bob, invitation, rng);
  std::printf("alice verifies bob's invitation: %s\n",
              integrity::verifyPost(group, registry, signedInvitation)
                  ? "VALID"
                  : "INVALID");

  // Mallory forges a letter "from bob" signed with her own key.
  social::Post forged{"bob", 2, 100, "Party cancelled, send gifts to Mallory"};
  SignedPost forgedLetter;
  forgedLetter.post = forged;
  forgedLetter.signature =
      pkcrypto::schnorrSign(group, mallory.signing, forged.serialize(), rng);
  std::printf("alice checks mallory's forgery:   %s\n",
              integrity::verifyPost(group, registry, forgedLetter)
                  ? "VALID (BUG!)"
                  : "REJECTED (not signed by bob)");

  // A tampered copy: "Friday" became "Saturday" in transit.
  SignedPost tampered = signedInvitation;
  tampered.post.text = "Come to my party held at my home on Saturday";
  std::printf("alice checks a tampered copy:     %s\n\n",
              integrity::verifyPost(group, registry, tampered)
                  ? "VALID (BUG!)"
                  : "REJECTED (content modified)");

  std::printf("== 2. Historical integrity (sec IV-B) ==\n");
  // Bob throws several parties; his timeline hash-chains the invitations so
  // Alice can tell which invitation is current and prove the order.
  integrity::Timeline bobTimeline(group, bob);
  bobTimeline.append(util::toBytes("invitation: party week 1"), rng);
  bobTimeline.append(util::toBytes("update: week-1 party cancelled"), rng);
  bobTimeline.append(util::toBytes("invitation: party week 2"), rng);
  std::printf("bob's chained timeline verifies:  %s\n",
              integrity::verifyChain(group, bob.signing.pub,
                                     bobTimeline.entries())
                  ? "VALID"
                  : "INVALID");
  std::printf("cancellation provably follows week-1 invitation: %s\n",
              integrity::provablyPrecedes(bobTimeline.entries(), 0, 1)
                  ? "yes"
                  : "no");

  // A replica tries to hide the cancellation (drop entry 1).
  auto censored = bobTimeline.entries();
  censored.erase(censored.begin() + 1);
  std::printf("censored timeline (cancellation removed): %s\n",
              integrity::verifyChain(group, bob.signing.pub, censored)
                  ? "VALID (BUG!)"
                  : "REJECTED (chain broken)");

  // Cross-timeline entanglement proves Alice replied AFTER the invitation.
  integrity::EntangledTimeline bobLine(group, bob);
  integrity::EntangledTimeline aliceLine(group, alice);
  const auto invHash =
      bobLine.append(util::toBytes("party friday!"), {}, rng).entryHash();
  const auto rsvpHash =
      aliceLine
          .append(util::toBytes("alice: I'll be there"),
                  {{"bob", bobLine.head()}}, rng)
          .entryHash();
  integrity::OrderOracle oracle({&bobLine, &aliceLine});
  std::printf("alice's RSVP provably after bob's invitation: %s\n\n",
              oracle.happenedBefore(invHash, rsvpHash) ? "yes" : "no");

  std::printf("== 3. Integrity of data relations (sec IV-C) ==\n");
  // Bob's post embeds a per-post comment key sealed to his friends.
  const util::Bytes friendsKey = rng.bytes(32);
  const integrity::RelationPost rsvpPost = integrity::createRelationPost(
      group, bob, social::Post{"bob", 10, 200, "RSVP thread for the party"},
      friendsKey, rng);

  const auto commentKey =
      integrity::extractCommentKey(group, rsvpPost, friendsKey);
  const integrity::SignedComment aliceRsvp = integrity::signComment(
      group, rsvpPost, *commentKey,
      social::Comment{"alice", 10, 201, "Count me in!"}, rng);
  std::printf("alice's comment verifies against bob's post: %s\n",
              integrity::verifyComment(group, rsvpPost, aliceRsvp)
                  ? "VALID"
                  : "INVALID");

  // The same comment replayed under a different post of Bob's fails.
  const integrity::RelationPost otherPost = integrity::createRelationPost(
      group, bob, social::Post{"bob", 11, 300, "Unrelated gardening post"},
      friendsKey, rng);
  std::printf("same comment replayed under another post:    %s\n",
              integrity::verifyComment(group, otherPost, aliceRsvp)
                  ? "VALID (BUG!)"
                  : "REJECTED (wrong relation)");

  // Mallory (no friends key) cannot mint a valid comment.
  const util::Bytes malloryKey = rng.bytes(32);
  std::printf("mallory extracts the comment key:            %s\n",
              integrity::extractCommentKey(group, rsvpPost, malloryKey)
                  ? "EXTRACTED (BUG!)"
                  : "DENIED (not an authorized commenter)");
  return 0;
}
