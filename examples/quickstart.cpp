// Quickstart: two users, a friends circle, an encrypted post, verified
// integrity, and a revocation — the library's core loop in ~60 lines.
//
//   ./quickstart
#include <cstdio>

#include "dosn/core/node.hpp"
#include "dosn/privacy/hybrid_acl.hpp"

int main() {
  using namespace dosn;

  util::Rng rng(2026);
  const pkcrypto::DlogGroup& group = pkcrypto::DlogGroup::cached(512);

  // Shared infrastructure: the out-of-band key registry and an access
  // controller (hybrid encryption: symmetric payload + per-member key wrap).
  social::IdentityRegistry registry;
  privacy::HybridAcl acl(group, rng, privacy::WrapScheme::kPublicKey);

  // Two user clients.
  core::DosnNode alice(group, "alice", registry, acl, rng);
  core::DosnNode bob(group, "bob", registry, acl, rng);
  core::DosnNode eve(group, "eve", registry, acl, rng);

  // Alice creates a circle and shares a post with Bob.
  alice.createCircle("friends");
  alice.addToCircle("friends", "bob");
  alice.publish("friends", "Hello from my decentralized wall!", /*now=*/1, rng);

  // Bob verifies Alice's timeline and decrypts.
  const auto post = bob.read(alice, 0);
  std::printf("bob reads:  %s\n",
              post ? post->text.c_str() : "(access denied)");

  // Eve is not in the circle.
  const auto denied = eve.read(alice, 0);
  std::printf("eve reads:  %s\n",
              denied ? denied->text.c_str() : "(access denied)");

  // Integrity: bob checks the hash-chained timeline signature.
  std::printf("timeline verified: %s\n",
              bob.verifyTimelineOf(alice) ? "yes" : "NO");

  // Revocation: bob is removed; the retained history is re-encrypted.
  const auto report = alice.removeFromCircle("friends", "bob");
  std::printf("revocation re-encrypted %zu envelope(s)\n",
              report.reencryptedEnvelopes);
  std::printf("bob after revocation: %s\n",
              bob.read(alice, 0) ? "still reads (BUG)" : "(access denied)");
  return 0;
}
